package snn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy returns the cross-entropy loss of logits against
// label and the gradient dL/dlogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	p := tensor.Softmax(logits)
	eps := 1e-12
	loss := -math.Log(math.Max(float64(p.Data[label]), eps))
	grad := p.Clone()
	grad.Data[label] -= 1
	return loss, grad
}

// SoftmaxCrossEntropyBatch is the batched form: logits is (B, classes),
// labels[b] the target of sample b. It returns the summed loss and the
// per-sample gradient rows dL/dlogits (each row identical to what
// SoftmaxCrossEntropy would return for that sample alone).
func SoftmaxCrossEntropyBatch(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 || logits.Shape[0] != len(labels) {
		panic("snn: SoftmaxCrossEntropyBatch logits/labels mismatch")
	}
	classes := logits.Shape[1]
	grad := tensor.New(logits.Shape...)
	total := 0.0
	for b, label := range labels {
		row := tensor.FromSlice(logits.Data[b*classes:(b+1)*classes], classes)
		loss, g := SoftmaxCrossEntropy(row, label)
		total += loss
		copy(grad.Data[b*classes:(b+1)*classes], g.Data)
	}
	return total, grad
}

// SoftmaxCrossEntropyBatchInto is SoftmaxCrossEntropyBatch writing the
// gradient into the caller-owned (B, classes) tensor grad (which must
// not alias logits) — the allocation-free form the training arena uses.
// The per-row arithmetic replicates tensor.Softmax and
// SoftmaxCrossEntropy exactly (float64 exponential accumulation, then a
// single float32 normalization), so losses and gradients are
// bit-identical to the allocating path.
func SoftmaxCrossEntropyBatchInto(logits *tensor.Tensor, labels []int, grad *tensor.Tensor) float64 {
	if logits.Rank() != 2 || logits.Shape[0] != len(labels) {
		panic("snn: SoftmaxCrossEntropyBatch logits/labels mismatch")
	}
	if !tensor.SameShape(grad, logits) {
		panic("snn: SoftmaxCrossEntropyBatchInto grad/logits shape mismatch")
	}
	classes := logits.Shape[1]
	eps := 1e-12
	total := 0.0
	for b, label := range labels {
		lrow := logits.Data[b*classes : (b+1)*classes]
		grow := grad.Data[b*classes : (b+1)*classes]
		maxV := float64(math.Inf(-1))
		for _, v := range lrow {
			if float64(v) > maxV {
				maxV = float64(v)
			}
		}
		sum := 0.0
		for i, v := range lrow {
			e := math.Exp(float64(v) - maxV)
			grow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range grow {
			grow[i] *= inv
		}
		total += -math.Log(math.Max(float64(grow[label]), eps))
		grow[label] -= 1
	}
	return total
}

// NegTargetLoss returns a loss whose *descent* direction reduces the
// target class probability — attacks maximize the true-class loss, which
// is the same gradient with opposite sign. Provided for readability in
// attack code: gradient ascent on SoftmaxCrossEntropy(label).
func NegTargetLoss(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	loss, grad := SoftmaxCrossEntropy(logits, label)
	return -loss, grad.Scale(-1)
}
