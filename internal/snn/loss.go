package snn

import (
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy returns the cross-entropy loss of logits against
// label and the gradient dL/dlogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	p := tensor.Softmax(logits)
	eps := 1e-12
	loss := -math.Log(math.Max(float64(p.Data[label]), eps))
	grad := p.Clone()
	grad.Data[label] -= 1
	return loss, grad
}

// SoftmaxCrossEntropyBatch is the batched form: logits is (B, classes),
// labels[b] the target of sample b. It returns the summed loss and the
// per-sample gradient rows dL/dlogits (each row identical to what
// SoftmaxCrossEntropy would return for that sample alone).
func SoftmaxCrossEntropyBatch(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 || logits.Shape[0] != len(labels) {
		panic("snn: SoftmaxCrossEntropyBatch logits/labels mismatch")
	}
	classes := logits.Shape[1]
	grad := tensor.New(logits.Shape...)
	total := 0.0
	for b, label := range labels {
		row := tensor.FromSlice(logits.Data[b*classes:(b+1)*classes], classes)
		loss, g := SoftmaxCrossEntropy(row, label)
		total += loss
		copy(grad.Data[b*classes:(b+1)*classes], g.Data)
	}
	return total, grad
}

// NegTargetLoss returns a loss whose *descent* direction reduces the
// target class probability — attacks maximize the true-class loss, which
// is the same gradient with opposite sign. Provided for readability in
// attack code: gradient ascent on SoftmaxCrossEntropy(label).
func NegTargetLoss(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	loss, grad := SoftmaxCrossEntropy(logits, label)
	return -loss, grad.Scale(-1)
}
