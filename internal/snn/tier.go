package snn

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// PrecisionTier selects the numeric path inference runs on. The serve
// tier exposes it per session: exact FP32 for clients that need the
// reference numerics, quantized INT8 for clients trading a bounded
// accuracy delta for cheaper integer compute (the paper's
// precision-scaling axis, now as a real compute path instead of fake
// quantization).
type PrecisionTier int

const (
	// TierFP32 is the exact float32 path — the default.
	TierFP32 PrecisionTier = iota
	// TierINT8 runs weighted layers on per-channel int8 panels with
	// int32 accumulation (tensor.MatMulInt8Into). Requires
	// BuildInt8Panels first.
	TierINT8
)

// String returns the wire/flag spelling of the tier.
func (t PrecisionTier) String() string {
	switch t {
	case TierFP32:
		return "fp32"
	case TierINT8:
		return "int8"
	default:
		return fmt.Sprintf("PrecisionTier(%d)", int(t))
	}
}

// ParseTier converts a flag string such as "int8" to a PrecisionTier.
func ParseTier(s string) (PrecisionTier, error) {
	switch s {
	case "fp32", "FP32":
		return TierFP32, nil
	case "int8", "INT8":
		return TierINT8, nil
	}
	return TierFP32, fmt.Errorf("snn: unknown precision tier %q", s)
}

// BuildInt8Panels quantizes every weighted layer's effective (mask-
// applied) weights to per-channel int8 panels. It is a cold operation:
// call it once at load or hot-swap time, after weights and prune masks
// are final — the hot path only ever reads the finished panels
// (mutating W or Mask afterwards leaves the panels stale until the next
// call). Clones made by CloneArchitecture share the panels read-only.
func (n *Network) BuildInt8Panels() error {
	for i, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			eff := v.W
			if v.Mask != nil {
				eff = v.W.Clone()
				eff.Mul(v.Mask)
			}
			p, err := quant.QuantizePerChannel(eff, v.OutC)
			if err != nil {
				return fmt.Errorf("snn: layer %d (conv2d): %w", i, err)
			}
			v.panel = p
		case *Dense:
			eff := v.W
			if v.Mask != nil {
				eff = v.W.Clone()
				eff.Mul(v.Mask)
			}
			p, err := quant.QuantizePerChannel(eff, v.Out)
			if err != nil {
				return fmt.Errorf("snn: layer %d (dense): %w", i, err)
			}
			v.panel = p
		}
	}
	return nil
}

// SetTier switches the network's inference tier. TierINT8 requires
// BuildInt8Panels to have run (and to be re-run after any weight or
// mask mutation). Training and the allocating legacy forwards always
// run FP32; the tier governs the arena inference path that Predict,
// PredictBatch and the serve/stream tiers ride.
func (n *Network) SetTier(t PrecisionTier) error {
	if t == TierINT8 {
		for i, l := range n.Layers {
			switch v := l.(type) {
			case *Conv2D:
				if v.panel == nil {
					return fmt.Errorf("snn: SetTier(int8): layer %d (conv2d) has no panel; call BuildInt8Panels first", i)
				}
			case *Dense:
				if v.panel == nil {
					return fmt.Errorf("snn: SetTier(int8): layer %d (dense) has no panel; call BuildInt8Panels first", i)
				}
			}
		}
	}
	n.tier = t
	use := t == TierINT8
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Conv2D:
			v.useInt8 = use
		case *Dense:
			v.useInt8 = use
		}
	}
	return nil
}

// Tier returns the network's current inference tier.
func (n *Network) Tier() PrecisionTier { return n.tier }

// forwardArenaInt8 is Conv2D's quantized arena forward: the same
// im2row lowering and scatter/bias epilogue as the rows-orient FP32
// path, with the GEMM swapped for the int8 kernel against the
// prebuilt panel (which already carries the prune mask, so no effW
// pass is needed). Always rows-orient: per-row activation quantization
// is what makes the result batch-shape invariant.
func (c *Conv2D) forwardArenaInt8(x *tensor.Tensor, s *Scratch, li, batch int, out *tensor.Tensor) *tensor.Tensor {
	g := c.Geom
	b := batch
	if b == 0 {
		b = 1
	}
	oh, ow := g.OutH(), g.OutW()
	n := oh * ow
	ckk := g.InC * g.KH * g.KW
	chw := g.InC * g.InH * g.InW
	rows := s.buf2(li, slotLow, b*n, ckk)
	for bi := 0; bi < b; bi++ {
		sample := s.view3(li, slotInView, x.Data[bi*chw:(bi+1)*chw], g.InC, g.InH, g.InW)
		tensor.ConvInt8Into(rows.Data, bi*n, sample, g)
	}
	outT := s.buf2(li, slotGemm, b*n, c.OutC)
	tensor.MatMulInt8Into(outT.Data, rows.Data, b*n, ckk, c.panel.Codes, c.panel.Steps, c.OutC, &c.i8)
	c.scatterRowsBias(out, outT, b, n)
	return out
}

// forwardArenaInt8 is Dense's quantized arena forward: one int8 GEMM
// against the prebuilt panel (m=1 for the per-sample layout), then the
// same bias add as the FP32 path.
func (d *Dense) forwardArenaInt8(x *tensor.Tensor, s *Scratch, li, batch int) *tensor.Tensor {
	if batch == 0 {
		out := s.buf1(li, slotOut, d.Out)
		tensor.MatMulInt8Into(out.Data, x.Data, 1, d.In, d.panel.Codes, d.panel.Steps, d.Out, &d.i8)
		for o := range out.Data {
			out.Data[o] += d.B.Data[o]
		}
		return out
	}
	out := s.buf2(li, slotOut, batch, d.Out)
	tensor.MatMulInt8Into(out.Data, x.Data, batch, d.In, d.panel.Codes, d.panel.Steps, d.Out, &d.i8)
	for b := 0; b < batch; b++ {
		row := out.Data[b*d.Out : (b+1)*d.Out]
		for o := range row {
			row[o] += d.B.Data[o]
		}
	}
	return out
}
