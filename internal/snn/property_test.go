package snn

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// Property tests on the substrate's core invariants (testing/quick).

// LIF outputs are always exactly 0 or 1 regardless of input.
func TestPropLIFOutputsBinary(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		l := NewLIF(0.2+r.Float32()*2, 0.5+r.Float32()*0.5, 4)
		x := tensor.New(16)
		for step := 0; step < 10; step++ {
			for i := range x.Data {
				x.Data[i] = r.NormFloat32() * 2
			}
			out := l.Forward(x, false)
			for _, v := range out.Data {
				if v != 0 && v != 1 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Forward passes are deterministic: same weights + same frames = same
// logits, repeatedly (state must be fully reset between samples).
func TestPropForwardDeterministic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		net := DenseNet(DefaultConfig(0.3+r.Float32(), 4), 12, 10, 3, r)
		frames := make([]*tensor.Tensor, 4)
		for i := range frames {
			f := tensor.New(12)
			for j := range f.Data {
				f.Data[j] = r.Float32()
			}
			frames[i] = f
		}
		a := net.Forward(frames, false)
		b := net.Forward(frames, false)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A pruning mask of all ones must not change the forward pass, and a
// mask of all zeros must yield bias-only logits.
func TestPropMaskSemantics(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		net := DenseNet(DefaultConfig(0.5, 3), 8, 6, 3, r)
		frames := []*tensor.Tensor{tensor.New(8)}
		for j := range frames[0].Data {
			frames[0].Data[j] = r.Float32()
		}
		base := net.Forward(frames, false)

		d := net.Layers[1].(*Dense)
		ones := tensor.New(d.W.Shape...)
		ones.Fill(1)
		d.Mask = ones
		withOnes := net.Forward(frames, false)
		for i := range base.Data {
			if base.Data[i] != withOnes.Data[i] {
				return false
			}
		}
		d.Mask = tensor.New(d.W.Shape...) // all zeros
		zeroed := net.Forward(frames, false)
		// First dense layer dead: downstream sees only its bias. The
		// forward must still run and produce finite logits.
		for _, v := range zeroed.Data {
			if v != v { // NaN
				return false
			}
		}
		d.Mask = nil
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Surrogate input gradients are finite for arbitrary finite inputs.
func TestPropGradientsFinite(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		net := DenseNet(DefaultConfig(0.4, 4), 10, 8, 3, r)
		frames := make([]*tensor.Tensor, 4)
		for i := range frames {
			f := tensor.New(10)
			for j := range f.Data {
				f.Data[j] = r.NormFloat32()
			}
			frames[i] = f
		}
		grads := InputGradient(net, frames, int(seed%3))
		for _, g := range grads {
			for _, v := range g.Data {
				if v != v || v > 1e10 || v < -1e10 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Serialization round-trips arbitrary trained states bit-exactly.
func TestPropSaveLoadBitExact(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := rng.New(seed)
		a := DenseNet(DefaultConfig(0.1+r.Float32()*2, 1+int(seed%8)), 6, 5, 2, r)
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			return false
		}
		b := DenseNet(DefaultConfig(9, 9), 6, 5, 2, rng.New(seed+1))
		if err := b.Load(&buf); err != nil {
			return false
		}
		pa, pb := a.Params(), b.Params()
		for i := range pa {
			for j := range pa[i].Data {
				if pa[i].Data[j] != pb[i].Data[j] {
					return false
				}
			}
		}
		return b.Cfg == a.Cfg
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
