package snn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients.
//
// Steps are in-place: implementations mutate the parameter tensors and
// allocate at most once (lazily, for their moment state on the first
// Step). The training arena's zero-allocation contract depends on this
// — TestTrainStepScratchZeroAllocs runs the optimizer inside its
// steady-state cycle.
type Optimizer interface {
	// Step applies one update. params and grads are aligned; scale is
	// multiplied into every gradient (e.g. 1/batchSize).
	Step(params, grads []*tensor.Tensor, scale float32)
}

// SGD is stochastic gradient descent with classical momentum.
type SGD struct {
	LR       float32
	Momentum float32

	vel [][]float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float32) *SGD { return &SGD{LR: lr, Momentum: momentum} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Tensor, scale float32) {
	if s.vel == nil {
		s.vel = make([][]float32, len(params))
		for i, p := range params {
			s.vel[i] = make([]float32, p.Len())
		}
	}
	for i, p := range params {
		g := grads[i]
		v := s.vel[i]
		for j := range p.Data {
			v[j] = s.Momentum*v[j] + g.Data[j]*scale
			p.Data[j] -= s.LR * v[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float32

	t int
	m [][]float32
	v [][]float32
}

// NewAdam returns Adam with the usual defaults for the moment decays.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Tensor, scale float32) {
	if a.m == nil {
		a.m = make([][]float32, len(params))
		a.v = make([][]float32, len(params))
		for i, p := range params {
			a.m[i] = make([]float32, p.Len())
			a.v[i] = make([]float32, p.Len())
		}
	}
	a.t++
	b1c := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	b2c := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j] * scale
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			mh := m[j] / b1c
			vh := v[j] / b2c
			p.Data[j] -= a.LR * mh / (sqrt32(vh) + a.Eps)
		}
	}
}
