package snn

import (
	"repro/internal/rng"
)

// The paper's two classifier architectures (§V-A):
//
//   MNIST:  7 layers — three convolutional, two pooling, two fully
//           connected (clean accuracy 97%).
//   DVS128: 8 layers — two convolutional, three pooling, two fully
//           connected, one dropout (clean accuracy 92%).
//
// Each is provided at two widths: the paper topology ("full") and a
// narrower "lite" variant used by tests and the scaled-down experiment
// presets; both share the exact layer sequence.

// MNISTNet builds the paper's 7-layer MNIST classifier for h×w inputs
// with inC channels. lite narrows the channel counts.
func MNISTNet(cfg Config, inC, h, w int, lite bool, r *rng.RNG) *Network {
	c1, c2, c3, fc := 16, 32, 32, 128
	if lite {
		c1, c2, c3, fc = 6, 12, 12, 48
	}
	conv1 := NewConv2D(inC, c1, 3, 1, 1, h, w, r)
	lif1 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	pool1 := NewAvgPool(2)
	h1, w1 := (h+1)/2, (w+1)/2

	conv2 := NewConv2D(c1, c2, 3, 1, 1, h1, w1, r)
	lif2 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	pool2 := NewAvgPool(2)
	h2, w2 := (h1+1)/2, (w1+1)/2

	conv3 := NewConv2D(c2, c3, 3, 1, 1, h2, w2, r)
	lif3 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)

	flat := &Flatten{}
	fc1 := NewDense(c3*h2*w2, fc, r)
	lif4 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	fc2 := NewDense(fc, 10, r)

	return NewNetwork(cfg,
		conv1, lif1, pool1,
		conv2, lif2, pool2,
		conv3, lif3,
		flat, fc1, lif4, fc2,
	)
}

// DVSNet builds the paper's 8-layer DVS128 Gesture classifier for h×w
// event frames (2 polarity channels). lite narrows the channel counts.
func DVSNet(cfg Config, h, w, classes int, lite bool, r *rng.RNG, dropRNG *rng.RNG) *Network {
	c1, c2, fc := 16, 32, 128
	if lite {
		c1, c2, fc = 8, 16, 64
	}
	pool0 := NewAvgPool(2) // input downsampling pool
	h0, w0 := (h+1)/2, (w+1)/2

	conv1 := NewConv2D(2, c1, 3, 1, 1, h0, w0, r)
	lif1 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	pool1 := NewAvgPool(2)
	h1, w1 := (h0+1)/2, (w0+1)/2

	conv2 := NewConv2D(c1, c2, 3, 1, 1, h1, w1, r)
	lif2 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	pool2 := NewAvgPool(2)
	h2, w2 := (h1+1)/2, (w1+1)/2

	flat := &Flatten{}
	drop := NewDropout(0.2, dropRNG)
	fc1 := NewDense(c2*h2*w2, fc, r)
	lif3 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	fc2 := NewDense(fc, classes, r)

	return NewNetwork(cfg,
		pool0,
		conv1, lif1, pool1,
		conv2, lif2, pool2,
		flat, drop, fc1, lif3, fc2,
	)
}

// DenseNet builds a small fully connected SNN (in → hidden → classes).
// The grid-sweep experiments use it where the paper trains one model per
// (Vth, T) cell: it preserves every robustness trend at a fraction of the
// convolutional cost.
func DenseNet(cfg Config, in, hidden, classes int, r *rng.RNG) *Network {
	flat := &Flatten{}
	fc1 := NewDense(in, hidden, r)
	lif1 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	fc2 := NewDense(hidden, hidden/2, r)
	lif2 := NewLIF(cfg.VTh, cfg.Decay, cfg.Beta)
	fc3 := NewDense(hidden/2, classes, r)
	return NewNetwork(cfg, flat, fc1, lif1, fc2, lif2, fc3)
}
