package snn

import (
	"testing"

	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/tensor"
)

// trainCase builds numerically identical network instances on demand so
// the arena and the allocating reference path can train twins.
type trainCase struct {
	name    string
	build   func() *Network
	shape   []int
	classes int
}

func trainCases() []trainCase {
	cfg := DefaultConfig(0.5, 6)
	return []trainCase{
		{"dense", func() *Network { return DenseNet(cfg, 144, 32, 10, rng.New(1)) }, []int{12, 12}, 10},
		{"mnist-conv", func() *Network { return MNISTNet(cfg, 1, 12, 12, true, rng.New(2)) }, []int{1, 12, 12}, 10},
		// Dropout layers own an RNG, so twin builds draw identical masks.
		{"dvs-dropout", func() *Network {
			return DVSNet(DefaultConfig(1.0, 6), 16, 16, 11, true, rng.New(3), rng.New(99))
		}, []int{2, 16, 16}, 11},
	}
}

// mustMatchTensors compares aligned tensor lists bit-for-bit.
func mustMatchTensors(t *testing.T, label string, want, got []*tensor.Tensor) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d tensors vs %d", label, len(want), len(got))
	}
	for k := range want {
		for i := range want[k].Data {
			if want[k].Data[i] != got[k].Data[i] {
				t.Fatalf("%s: tensor %d element %d = %v, want %v (must be bit-identical)",
					label, k, i, got[k].Data[i], want[k].Data[i])
			}
		}
	}
}

// TestTrainStepScratchMatchesBatch pins the arena minibatch step —
// loss, accumulated gradients and optimizer-updated weights — to the
// allocating ForwardBatch/BackwardBatch path, across changing batch
// sizes and at 1..N workers.
func TestTrainStepScratchMatchesBatch(t *testing.T) {
	defer tensor.SetWorkers(0)
	for _, workers := range []int{1, 3} {
		tensor.SetWorkers(workers)
		for _, tc := range trainCases() {
			ref, arena := tc.build(), tc.build()
			ts := arena.AcquireTrainScratch()
			optR, optA := NewAdam(2e-3), NewAdam(2e-3)
			r := rng.New(21)
			for step := 0; step < 4; step++ {
				batch := 2 + step // exercise buffer resizing
				samples := make([][]*tensor.Tensor, batch)
				labels := make([]int, batch)
				for b := range samples {
					samples[b] = spikeFrames(r, ref.Cfg.Steps, tc.shape)
					labels[b] = b % tc.classes
				}
				ref.ZeroGrads()
				logits := ref.ForwardBatch(StackFrames(samples, ref.Cfg.Steps), true)
				lossR, grad := SoftmaxCrossEntropyBatch(logits, labels)
				ref.BackwardBatch(grad)

				ts.ZeroGrads()
				lossA := arena.TrainStepScratch(samples, labels, ts)

				if lossR != lossA {
					t.Fatalf("%s w%d step %d: loss %v, want %v", tc.name, workers, step, lossA, lossR)
				}
				mustMatchTensors(t, tc.name+" grads", ref.Grads(), arena.Grads())

				optR.Step(ref.Params(), ref.Grads(), 1/float32(batch))
				optA.Step(ts.Params(), ts.Grads(), 1/float32(batch))
				mustMatchTensors(t, tc.name+" params", ref.Params(), arena.Params())
			}
			arena.ReleaseTrain(ts)
		}
	}
}

// TestTrainMatchesAllocatingPath trains twin networks over several
// epochs — one through the arena, one through the seed allocating path
// (the disableTrainArena hook) — and requires bit-identical weights, at
// 1..N workers.
func TestTrainMatchesAllocatingPath(t *testing.T) {
	defer tensor.SetWorkers(0)
	set := tinyTrainSet(48, 31)
	for _, workers := range []int{1, 3} {
		tensor.SetWorkers(workers)
		opt := TrainOptions{
			Epochs: 3, BatchSize: 8,
			Encoder:  encoding.Rate{},
			Seed:     7,
			ClipNorm: 1.0,
		}
		ref := DenseNet(DefaultConfig(0.5, 5), set.H*set.W, 24, 10, rng.New(4))
		arena := DenseNet(DefaultConfig(0.5, 5), set.H*set.W, 24, 10, rng.New(4))

		disableTrainArena = true
		refOpt := opt
		refOpt.Optimizer = NewAdam(2e-3)
		Train(ref, set, refOpt)
		disableTrainArena = false

		arenaOpt := opt
		arenaOpt.Optimizer = NewAdam(2e-3)
		Train(arena, set, arenaOpt)

		mustMatchTensors(t, "trained weights", ref.Params(), arena.Params())
	}
}

// TestTrainFramesMatchesAllocatingPath is the DVS-path variant of the
// epoch-level equivalence, covering dropout and the pool-bottomed
// topology whose input gradients the arena elides.
func TestTrainFramesMatchesAllocatingPath(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	r := rng.New(41)
	samples := make([][]*tensor.Tensor, 20)
	labels := make([]int, len(samples))
	for i := range samples {
		samples[i] = spikeFrames(r, 6, []int{2, 16, 16})
		labels[i] = i % 11
	}
	build := func() *Network {
		return DVSNet(DefaultConfig(1.0, 6), 16, 16, 11, true, rng.New(5), rng.New(77))
	}
	opt := TrainOptions{Epochs: 2, BatchSize: 4, Seed: 9}

	ref := build()
	disableTrainArena = true
	refOpt := opt
	refOpt.Optimizer = NewSGD(0.05, 0.9)
	TrainFrames(ref, samples, labels, refOpt)
	disableTrainArena = false

	arena := build()
	arenaOpt := opt
	arenaOpt.Optimizer = NewSGD(0.05, 0.9)
	TrainFrames(arena, samples, labels, arenaOpt)

	mustMatchTensors(t, "trained weights", ref.Params(), arena.Params())
}

// TestInputGradSumScratchMatchesAllocating pins the attack-crafting
// quantity — the summed per-step input gradients — to the allocating
// InputGradientBatch + SumFrameGradients chain, at 1..N workers.
func TestInputGradSumScratchMatchesAllocating(t *testing.T) {
	defer tensor.SetWorkers(0)
	for _, workers := range []int{1, 3} {
		tensor.SetWorkers(workers)
		for _, tc := range trainCases() {
			net := tc.build()
			r := rng.New(51)
			samples := make([][]*tensor.Tensor, 4)
			labels := make([]int, len(samples))
			for b := range samples {
				samples[b] = spikeFrames(r, net.Cfg.Steps, tc.shape)
				labels[b] = (b + 1) % tc.classes
			}
			frames := StackFrames(samples, net.Cfg.Steps)
			want := encoding.SumFrameGradients(InputGradientBatch(net, frames, labels))

			clone := net.CloneArchitecture()
			ts := clone.AcquireTrainScratch()
			got := clone.InputGradSumScratch(ts.StackFramesInto(samples), labels, ts)
			if !tensor.SameShape(want, got) {
				t.Fatalf("%s w%d: shape %v vs %v", tc.name, workers, got.Shape, want.Shape)
			}
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%s w%d: grad %d = %v, want %v (must be bit-identical)",
						tc.name, workers, i, got.Data[i], want.Data[i])
				}
			}
			clone.ReleaseTrain(ts)
		}
	}
}

// TestTrainStepScratchZeroAllocs asserts the arena's headline property:
// after warm-up, the whole steady-state minibatch cycle — zeroing,
// frame stacking, training forward, loss, BPTT, clipping, optimizer
// step — allocates nothing in the deterministic serial mode (parallel
// dispatch allocates per-kernel job descriptors, as with the inference
// arena).
func TestTrainStepScratchZeroAllocs(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	for _, tc := range trainCases() {
		net := tc.build()
		ts := net.AcquireTrainScratch()
		r := rng.New(61)
		samples := make([][]*tensor.Tensor, 4)
		labels := make([]int, len(samples))
		for b := range samples {
			samples[b] = spikeFrames(r, net.Cfg.Steps, tc.shape)
			labels[b] = b % tc.classes
		}
		opt := NewAdam(2e-3)
		cycle := func() {
			ts.ZeroGrads()
			net.TrainStepScratch(samples, labels, ts)
			clipGradients(ts.Grads(), 1.0)
			opt.Step(ts.Params(), ts.Grads(), 0.25)
		}
		cycle() // warm the arena and the optimizer state
		cycle()
		if avg := testing.AllocsPerRun(10, cycle); avg != 0 {
			t.Errorf("%s: train step allocates %.1f objects/op in steady state, want 0", tc.name, avg)
		}
		net.ReleaseTrain(ts)
	}
}

// TestInputGradSumScratchZeroAllocs asserts the same property for the
// attack-crafting gradient pass against a caller-held arena.
func TestInputGradSumScratchZeroAllocs(t *testing.T) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	tc := trainCases()[1]
	net := tc.build().CloneArchitecture()
	ts := net.AcquireTrainScratch()
	r := rng.New(71)
	samples := make([][]*tensor.Tensor, 3)
	labels := make([]int, len(samples))
	for b := range samples {
		samples[b] = spikeFrames(r, net.Cfg.Steps, tc.shape)
		labels[b] = b % tc.classes
	}
	pass := func() {
		frames := ts.StackFramesInto(samples)
		net.InputGradSumScratch(frames, labels, ts)
	}
	pass()
	pass()
	if avg := testing.AllocsPerRun(10, pass); avg != 0 {
		t.Errorf("input-gradient pass allocates %.1f objects/op in steady state, want 0", avg)
	}
	net.ReleaseTrain(ts)
}

// TestSoftmaxCrossEntropyBatchIntoMatches pins the Into loss to the
// allocating form bit-for-bit, stale destination included.
func TestSoftmaxCrossEntropyBatchIntoMatches(t *testing.T) {
	r := rng.New(81)
	logits := tensor.New(5, 7)
	for i := range logits.Data {
		logits.Data[i] = r.NormFloat32() * 3
	}
	labels := []int{0, 6, 3, 3, 1}
	wantLoss, wantGrad := SoftmaxCrossEntropyBatch(logits, labels)
	grad := tensor.New(5, 7)
	for i := range grad.Data {
		grad.Data[i] = 42 // stale contents must vanish
	}
	gotLoss := SoftmaxCrossEntropyBatchInto(logits, labels, grad)
	if gotLoss != wantLoss {
		t.Fatalf("loss %v, want %v", gotLoss, wantLoss)
	}
	for i := range wantGrad.Data {
		if grad.Data[i] != wantGrad.Data[i] {
			t.Fatalf("grad %d = %v, want %v", i, grad.Data[i], wantGrad.Data[i])
		}
	}
}

// TestTrainScratchPoolRecycles pins the acquire/release free-list
// contract mirroring the inference arena's.
func TestTrainScratchPoolRecycles(t *testing.T) {
	net := trainCases()[0].build()
	ts := net.AcquireTrainScratch()
	net.ReleaseTrain(ts)
	if got := net.AcquireTrainScratch(); got != ts {
		t.Fatal("released TrainScratch must be recycled by the next acquire")
	}
}
