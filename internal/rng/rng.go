// Package rng provides small, fast, deterministic pseudo-random number
// generators for reproducible experiments.
//
// The package intentionally avoids math/rand so that every experiment in
// this repository is bit-reproducible across Go versions: the stream
// produced by a given seed is defined entirely by this file.
//
// The core generator is xoshiro256** seeded through splitmix64, the
// combination recommended by Blackman & Vigna. It passes BigCrush and is
// far cheaper than crypto-grade generators, which matters because spike
// encoding draws one variate per pixel per time step.
package rng

import "math"

// RNG is a deterministic xoshiro256** generator. The zero value is not
// valid; use New.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds yield uncorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r's current state. It is
// used to hand child components their own streams without sharing state.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform variate in [0, 1) with 24 random bits.
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// NormFloat32 returns a standard normal variate as float32.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Poisson returns a Poisson variate with mean lambda using Knuth's method
// for small lambda and a normal approximation above 30 (adequate for spike
// counts).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		n := int(math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm fills a permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes idx in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
