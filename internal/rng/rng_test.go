package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(19)
	const p, n = 0.3, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, got)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(23)
	for _, lambda := range []float64{0.5, 3, 12, 50} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(lambda)
		}
		mean := float64(sum) / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		if r.Poisson(40) < 0 {
			t.Fatal("negative Poisson variate")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson with non-positive lambda must be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(37)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
