// Package hotpathalloc checks the repo's zero-allocation invariant:
// hot-path functions — those annotated //axsnn:hotpath, the *Into /
// *Scratch kernel entry points of internal/tensor and internal/snn,
// and everything transitively reachable from them through static
// in-package calls — must not contain allocating constructs.
//
// Flagged constructs: make, new, append (growth can allocate),
// composite literals, function literals (closures; literals deferred
// directly are exempt — open-coded defers are stack-allocated), string
// concatenation and string<->slice conversions, interface boxing of
// non-pointer values, go statements, and calls into packages that are
// not allocation-checked (anything outside a small allocation-free
// stdlib allowlist). Cross-package calls inside the module resolve
// through function facts exported when the callee's package was
// analyzed, so a stream kernel calling an allocating dvs helper is
// caught at the call site.
//
// The escape hatch is //axsnn:allow-alloc <reason>: on the line of (or
// line above) an allocating statement it excuses that statement; in a
// function's doc comment it excuses the whole function and stops
// hot-path propagation through it. A directive without a reason is
// itself a diagnostic — the excuse must say why the allocation is
// acceptable (amortized, cold guard path, documented non-zero-alloc
// mode, ...).
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "hot-path functions (//axsnn:hotpath and *Into/*Scratch kernels, transitively) must not allocate",
	Run:  run,
}

// cleanStdlib are the stdlib packages whose functions the analyzer
// trusts not to allocate on any path hot code uses.
var cleanStdlib = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
	"unsafe":      true,
}

// A violation is one allocating construct.
type violation struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	funcs := analysis.PackageFuncs(pass)
	exc := map[*ast.File]*analysis.Excusals{}
	for _, f := range pass.Files {
		exc[f] = analysis.CollectExcusals(pass.Fset, f, "allow-alloc")
		for _, d := range exc[f].MissingReasons() {
			pass.Reportf(d.Pos, "allow-alloc directive must carry a reason")
		}
	}
	for _, fi := range funcs {
		if d, ok := analysis.FuncDirective(fi.Decl, "allow-alloc"); ok && d.Args == "" {
			pass.Reportf(d.Pos, "allow-alloc directive must carry a reason")
		}
	}

	// Scan every function body once; facts need all of them, hot or not.
	own := map[*types.Func][]violation{}
	for obj, fi := range funcs {
		own[obj] = scanBody(pass, fi, exc[fi.File])
	}

	// fact returns the function's allocation summary: its first own
	// violation, or the first dirty callee (in-package via recursion,
	// cross-package via imported facts). Cycles read as clean while on
	// the stack; any real allocation in the cycle is still found from
	// the function that owns it.
	memo := map[*types.Func]string{}
	onStack := map[*types.Func]bool{}
	var fact func(obj *types.Func) string
	fact = func(obj *types.Func) string {
		if f, ok := memo[obj]; ok {
			return f
		}
		if onStack[obj] {
			return ""
		}
		fi := funcs[obj]
		if analysis.FuncExcused(fi.Decl) {
			memo[obj] = ""
			return ""
		}
		if vs := own[obj]; len(vs) > 0 {
			f := fmt.Sprintf("%s (at %s)", vs[0].msg, shortPos(pass.Fset, vs[0].pos))
			memo[obj] = f
			return f
		}
		onStack[obj] = true
		defer delete(onStack, obj)
		for _, callee := range fi.CallOrder {
			if _, excused := exc[fi.File].Excused(fi.Calls[callee]); excused {
				continue
			}
			var cf string
			var known bool
			if _, inPkg := funcs[callee]; inPkg {
				cf, known = fact(callee), true
			} else {
				cf, known = calleeFact(pass, callee)
			}
			if !known {
				cf = fmt.Sprintf("calls %s, which is not allocation-checked", calleeName(callee))
			}
			if cf != "" {
				f := fmt.Sprintf("calls %s: %s", calleeName(callee), cf)
				memo[obj] = f
				return f
			}
		}
		memo[obj] = ""
		return ""
	}

	hot := analysis.HotpathSet(pass, funcs)
	var hotObjs []*types.Func
	for obj := range hot {
		hotObjs = append(hotObjs, obj)
	}
	sort.Slice(hotObjs, func(i, j int) bool {
		return hot[hotObjs[i]].Info.Decl.Pos() < hot[hotObjs[j]].Info.Decl.Pos()
	})
	for _, obj := range hotObjs {
		h := hot[obj]
		for _, v := range own[obj] {
			pass.Reportf(v.pos, "%s in hot-path function %s (%s)", v.msg, obj.Name(), h.Why)
		}
		// Cross-package callees: report dirty or unchecked ones at the
		// call site. In-package callees report themselves — they are in
		// the hot-path set by reachability.
		for _, callee := range h.Info.CallOrder {
			if _, inPkg := funcs[callee]; inPkg {
				continue
			}
			pos := h.Info.Calls[callee]
			if _, excused := exc[h.Info.File].Excused(pos); excused {
				continue
			}
			cf, known := calleeFact(pass, callee)
			if !known {
				pass.Reportf(pos, "hot-path function %s (%s) calls %s, which is not allocation-checked",
					obj.Name(), h.Why, calleeName(callee))
			} else if cf != "" {
				pass.Reportf(pos, "hot-path function %s (%s) calls %s, which allocates: %s",
					obj.Name(), h.Why, calleeName(callee), cf)
			}
		}
	}

	// Export one fact per declared function so importing packages can
	// query cleanliness without re-reading bodies.
	for obj := range funcs {
		pass.ExportFact(obj, fact(obj))
	}
	return nil
}

// calleeFact resolves a cross-package callee's allocation summary:
// the stdlib allowlist first — it wins even when a fact exists, so a
// vet run that built facts for stdlib dependencies agrees with the
// standalone mode, which never analyzes their sources — then the
// imported fact when the callee's package was analyzed.
func calleeFact(pass *analysis.Pass, callee *types.Func) (fact string, known bool) {
	if callee.Pkg() != nil && cleanStdlib[callee.Pkg().Path()] {
		return "", true
	}
	if f, ok := pass.ReadFact(callee); ok {
		return f, true
	}
	return "", false
}

func calleeName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := analysis.FuncKey(fn)
	// Trim the package path down to its base for readability.
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	return key
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// flagLit reports a heap-allocating composite literal once: literals
// nested inside an already-flagged one are part of the same allocation
// event and stay silent.
func flagLit(lit *ast.CompositeLit, pos token.Pos, flagged *[]ast.Node, add func(token.Pos, string, ...any)) {
	for _, fl := range *flagged {
		if fl.Pos() <= lit.Pos() && lit.End() <= fl.End() {
			return
		}
	}
	*flagged = append(*flagged, lit)
	add(pos, "composite literal allocates")
}

// scanBody collects fi's own allocating constructs, skipping excused
// statements.
func scanBody(pass *analysis.Pass, fi *analysis.FuncInfo, exc *analysis.Excusals) []violation {
	var out []violation
	info := pass.TypesInfo
	add := func(pos token.Pos, format string, args ...any) {
		if _, excused := exc.Excused(pos); excused {
			return
		}
		out = append(out, violation{pos, fmt.Sprintf(format, args...)})
	}

	// Function literals deferred directly are stack-allocated
	// (open-coded defers); collect them for exemption. Composite
	// literals nested inside an already-flagged one are not re-flagged.
	deferredLits := map[*ast.FuncLit]bool{}
	var flaggedLits []ast.Node
	// Enclosing signatures for return-statement boxing checks.
	type fnScope struct {
		body *ast.BlockStmt
		sig  *types.Signature
	}
	var scopes []fnScope
	if sig, ok := info.Defs[fi.Decl.Name].(*types.Func); ok {
		scopes = append(scopes, fnScope{fi.Decl.Body, sig.Type().(*types.Signature)})
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				deferredLits[lit] = true
			}
		case *ast.FuncLit:
			if sig, ok := info.Types[n].Type.(*types.Signature); ok {
				scopes = append(scopes, fnScope{n.Body, sig})
			}
		}
		return true
	})
	enclosingSig := func(pos token.Pos) *types.Signature {
		var best *fnScope
		for i := range scopes {
			s := &scopes[i]
			if s.body.Pos() <= pos && pos < s.body.End() {
				if best == nil || (s.body.Pos() >= best.body.Pos() && s.body.End() <= best.body.End()) {
					best = s
				}
			}
		}
		if best == nil {
			return nil
		}
		return best.sig
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		case *ast.FuncLit:
			if !deferredLits[n] {
				add(n.Pos(), "function literal allocates its closure")
			}
		case *ast.UnaryExpr:
			// &T{...} forces the literal to the heap; value struct
			// literals without the & are plain stack values.
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					flagLit(cl, n.Pos(), &flaggedLits, add)
				}
			}
		case *ast.CompositeLit:
			// Slice and map literals always allocate their backing
			// store; pointer-typed literals (the elided & inside
			// []*T{{...}}) allocate the pointee. Value struct/array
			// literals do not allocate by themselves — if they box
			// into an interface or escape via &, the boxing check or
			// the UnaryExpr case above catches them.
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map, *types.Pointer:
					flagLit(n, n.Pos(), &flaggedLits, add)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n].Type) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			scanCall(info, n, add)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) && n.Tok == token.ASSIGN {
				for i := range n.Rhs {
					if lt := info.Types[n.Lhs[i]].Type; lt != nil {
						checkBox(info, n.Rhs[i], lt, add)
					}
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if t := info.Types[n.Type].Type; t != nil {
					for _, v := range n.Values {
						checkBox(info, v, t, add)
					}
				}
			}
		case *ast.ReturnStmt:
			sig := enclosingSig(n.Pos())
			if sig != nil && len(n.Results) == sig.Results().Len() {
				for i, r := range n.Results {
					checkBox(info, r, sig.Results().At(i).Type(), add)
				}
			}
		}
		return true
	})
	return out
}

// scanCall flags allocating builtins, allocating conversions and
// interface-boxing arguments of one call.
func scanCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	tv := info.Types[call.Fun]
	// Type conversions.
	if tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.Types[call.Args[0]].Type
			switch {
			case isString(to) && isByteOrRuneSlice(from), isByteOrRuneSlice(to) && isString(from):
				add(call.Pos(), "string conversion allocates")
			default:
				checkBox(info, call.Args[0], to, add)
			}
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				add(call.Pos(), "append may grow its backing array")
			case "print", "println":
				add(call.Pos(), "%s allocates", id.Name)
			}
			return
		}
	}
	// Interface boxing of arguments (any call, static or dynamic).
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkBox(info, arg, pt, add)
	}
}

// checkBox flags expr if assigning it to target boxes a non-pointer
// value into an interface (the allocation the escape analyzer cannot
// remove when the interface escapes).
func checkBox(info *types.Info, expr ast.Expr, target types.Type, add func(token.Pos, string, ...any)) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv := info.Types[expr]
	if tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return
	}
	add(expr.Pos(), "%s value boxed into interface (allocates)", tv.Type.String())
}

// pointerShaped reports whether values of t fit an interface's data
// word without heap allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		return u.NumFields() == 0 // zero-size: boxed as a static sentinel
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
