// Package hot exercises annotated hot-path roots: every allocating
// construct class, reachability through in-package calls, and the
// allow-alloc escape hatches.
package hot

import (
	"strconv"
	"sync"
)

// Sum is clean: loops and arithmetic only.
//
//axsnn:hotpath
func Sum(xs []int) int {
	acc := 0
	for _, x := range xs {
		acc += x
	}
	return acc
}

//axsnn:hotpath
func Make(n int) []int {
	buf := make([]int, n) // want `make allocates`
	return buf
}

//axsnn:hotpath
func New() *int {
	return new(int) // want `new allocates`
}

//axsnn:hotpath
func Append(dst []int, x int) []int {
	dst = append(dst, x) // want `append may grow its backing array`
	return dst
}

//axsnn:hotpath
func Composite() []int {
	return []int{1, 2, 3} // want `composite literal allocates`
}

type pair struct{ a, b int }

// ValueLit builds a plain value struct literal: a stack value, not an
// allocation, so no diagnostic.
//
//axsnn:hotpath
func ValueLit(x, y int) int {
	p := pair{x, y}
	return p.a + p.b
}

//axsnn:hotpath
func HeapLit(x int) *pair {
	return &pair{a: x} // want `composite literal allocates`
}

//axsnn:hotpath
func ElidedHeapLit(x int) []*pair {
	ps := []*pair{{a: x}} // want `composite literal allocates`
	return ps
}

//axsnn:hotpath
func Spawn(f func()) {
	go f() // want `go statement allocates a goroutine`
}

//axsnn:hotpath
func Closure(xs []int) func() int {
	f := func() int { return len(xs) } // want `function literal allocates its closure`
	return f
}

// Locked defers a function literal directly: open-coded defers are
// stack-allocated, so no diagnostic.
//
//axsnn:hotpath
func Locked(mu *sync.Mutex) {
	mu.Lock()
	defer func() { mu.Unlock() }()
}

//axsnn:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//axsnn:hotpath
func Bytes(s string) []byte {
	return []byte(s) // want `string conversion allocates`
}

//axsnn:hotpath
func Box(x int) any {
	var v any = x // want `int value boxed into interface`
	return v
}

//axsnn:hotpath
func Itoa(x int) string {
	return strconv.Itoa(x) // want `calls strconv.Itoa, which is not allocation-checked`
}

// Entry pulls helper into the hot-path set by reachability; the
// violation is reported inside helper.
//
//axsnn:hotpath
func Entry(n int) int {
	return helper(n)
}

func helper(n int) int {
	m := make([]int, n) // want `make allocates`
	return len(m)
}

//axsnn:hotpath
func ExcusedLine(n int) []int {
	buf := make([]int, n) //axsnn:allow-alloc grows only on first use; amortized across the run
	return buf
}

// ExcusedDispatch carries a trailing directive on the first line of a
// multi-line call: the whole statement, closure included, is excused.
//
//axsnn:hotpath
func ExcusedDispatch(xs []int, acc *int) {
	forEach(len(xs), func(i int) { //axsnn:allow-alloc dispatch closure, amortized over the batch
		*acc += xs[i]
	})
}

func forEach(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

//axsnn:hotpath
func CallsOptedOut(n int) int {
	return optedOut(n)
}

// optedOut opts out of hot-path checking entirely, with a reason.
//
//axsnn:allow-alloc cold configuration path, runs once per reload
func optedOut(n int) int {
	return len(make([]int, n))
}

//axsnn:hotpath
func MissingReason(n int) []int {
	/* want `allow-alloc directive must carry a reason` */ //axsnn:allow-alloc
	buf := make([]int, n)
	return buf
}

// ColdSetup allocates freely: it is not hot and nothing hot calls it.
func ColdSetup(n int) map[int][]int {
	out := map[int][]int{}
	for i := 0; i < n; i++ {
		out[i] = make([]int, i)
	}
	return out
}
