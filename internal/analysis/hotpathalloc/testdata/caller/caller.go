// Package caller exercises cross-package fact flow: dep is analyzed
// first (dependency order), and its exported facts surface here at the
// call sites.
package caller

import "fix/dep"

//axsnn:hotpath
func Hot(n int) int {
	buf := dep.Alloc(n) // want `calls dep.Alloc, which allocates: make allocates`
	return len(buf) + dep.Clean(n)
}

//axsnn:hotpath
func HotIndirect(n int) int {
	return dep.Indirect(n) // want `calls dep.Indirect, which allocates: calls dep.Alloc: make allocates`
}

//axsnn:hotpath
func HotExcusedCall(n int) int {
	buf := dep.Alloc(n) //axsnn:allow-alloc warmup fill; runs before serving starts
	return len(buf)
}
