// Package dep provides cross-package callees whose allocation facts
// must flow to importers.
package dep

// Alloc allocates on every call.
func Alloc(n int) []int {
	return make([]int, n)
}

// Clean never allocates.
func Clean(x int) int {
	return x &^ 1
}

// Indirect allocates through Alloc: the fact is transitive.
func Indirect(n int) int {
	return len(Alloc(n))
}
