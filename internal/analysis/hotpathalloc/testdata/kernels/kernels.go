// Package kernels exercises name-implied hot-path roots: the test
// registers fix/kernels as a kernel package, so *Into / *Scratch
// functions are hot with no annotation.
package kernels

// AddInto is hot by name and clean.
func AddInto(dst, a, b []float32) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// ScaleInto is hot by name and allocates.
func ScaleInto(dst []float32, s float32) []float32 {
	tmp := make([]float32, len(dst)) // want `make allocates`
	for i := range dst {
		tmp[i] = dst[i] * s
	}
	return tmp
}

// NewBufInto is a constructor despite the suffix: exempt by prefix.
func NewBufInto(n int) []float32 {
	return make([]float32, n)
}
