package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analysis.HotpathNamePackages["fix/kernels"] = true
	defer delete(analysis.HotpathNamePackages, "fix/kernels")
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer)
}
