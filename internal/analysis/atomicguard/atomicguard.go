// Package atomicguard checks the two shared-state disciplines the
// serving stack relies on:
//
//  1. A field accessed through the sync/atomic function API
//     (atomic.LoadInt64(&s.n), atomic.StorePointer(&s.p, ...)) must
//     never also be read or written plainly — one plain access races
//     with every atomic one. (Typed atomics — atomic.Int64,
//     atomic.Pointer[T] — are immune by construction and need no
//     check; this rule catches the mixed style.)
//
//  2. A struct field annotated //axsnn:guardedby <mutex> must only be
//     touched while that mutex (a sibling field) is held: every access
//     must sit between a <base>.<mutex>.Lock()/RLock() and its
//     Unlock — a deferred Unlock holds to function end. The check is
//     lexical per innermost function body (straight-line lock regions,
//     the repo's style); a function documented to run with the lock
//     held opts out with //axsnn:locked <mutex> in its doc comment.
//     Composite-literal initialization is exempt: a value under
//     construction is not yet shared.
//
// The serve session tables and the stream pipeline's panic capture are
// the production state this guards; the checkpoint pointer itself is a
// typed atomic.Pointer, safe by construction.
package atomicguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomicguard",
	Doc:  "atomically-accessed fields must never be touched plainly; //axsnn:guardedby fields only with their mutex held",
	Run:  run,
}

// guard records one //axsnn:guardedby annotation.
type guard struct {
	mutex string
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// ---- Rule 1 inventory: fields passed by address to sync/atomic
	// function-API calls, and those sanctioned use sites.
	atomicFields := map[*types.Var]bool{}
	atomicUses := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.StaticCallee(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-atomic method, not the function API
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(info, sel); fv != nil {
					atomicFields[fv] = true
					atomicUses[sel] = true
				}
			}
			return true
		})
	}

	// ---- Rule 2 inventory: //axsnn:guardedby annotations.
	guarded := map[*types.Var]guard{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				d, ok := analysis.FieldDirective(f, "guardedby")
				if !ok {
					continue
				}
				if d.Args == "" {
					pass.Reportf(d.Pos, "guardedby directive must name the guarding mutex field")
					continue
				}
				for _, name := range f.Names {
					if fv, ok := info.Defs[name].(*types.Var); ok {
						guarded[fv] = guard{mutex: d.Args}
					}
				}
			}
			return true
		})
	}

	if len(atomicFields) == 0 && len(guarded) == 0 {
		return nil
	}

	// Composite-literal spans: field mentions inside are construction,
	// not shared access.
	inComposite := compositeSpans(pass.Files)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var lockedMutexes []string
			if d, ok := analysis.FuncDirective(fd, "locked"); ok {
				lockedMutexes = strings.Fields(d.Args)
			}
			// Lock regions are computed per innermost function body: a
			// closure must take the lock itself (or the enclosing
			// function's doc must say //axsnn:locked).
			for _, scope := range functionBodies(fd) {
				held := lockRegions(info, scope)
				checkScope(pass, scope, held, lockedMutexes, atomicFields, atomicUses, guarded, inComposite)
			}
		}
	}
	return nil
}

// fieldOf resolves a selector to the struct field it denotes.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// baseString renders the receiver chain of an expression ("s", "p.o").
// Unrenderable bases (calls, indexes) return "".
func baseString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		b := baseString(e.X)
		if b == "" {
			return ""
		}
		return b + "." + e.Sel.Name
	}
	return ""
}

// scope is one function body with nested literals masked out.
type scope struct {
	body *ast.BlockStmt
	lits []*ast.FuncLit
}

func functionBodies(fd *ast.FuncDecl) []*scope {
	var bodies []*ast.BlockStmt
	bodies = append(bodies, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	var scopes []*scope
	for _, b := range bodies {
		s := &scope{body: b}
		ast.Inspect(b, func(n ast.Node) bool {
			if n == b {
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				s.lits = append(s.lits, lit)
				return false
			}
			return true
		})
		scopes = append(scopes, s)
	}
	return scopes
}

func (s *scope) inScope(pos token.Pos) bool {
	if pos < s.body.Pos() || pos >= s.body.End() {
		return false
	}
	for _, lit := range s.lits {
		if lit.Pos() <= pos && pos < lit.End() {
			return false
		}
	}
	return true
}

// A lockInterval is one source span during which a mutex is held.
type lockInterval struct {
	key        string // "<base>.<mutex>"
	start, end token.Pos
}

// lockEvent is one Lock/Unlock call in source order. depth is the
// event's block-nesting level inside the scope: an Unlock nested deeper
// than its Lock sits on an early-exit branch (unlock-and-return), so it
// must not end the region the fall-through path still holds.
type lockEvent struct {
	pos      token.Pos
	key      string
	lock     bool
	deferred bool
	depth    int
}

// lockRegions computes, lexically, the spans of the scope during which
// each "<base>.<mutex>" is held. A deferred Unlock (and an unmatched
// Lock) holds to the end of the scope.
func lockRegions(info *types.Info, s *scope) []lockInterval {
	var events []lockEvent
	record := func(call *ast.CallExpr, deferred bool, pos token.Pos) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		var lock bool
		switch sel.Sel.Name {
		case "Lock", "RLock":
			lock = true
		case "Unlock", "RUnlock":
			lock = false
		default:
			return
		}
		key := baseString(sel.X)
		if key == "" {
			return
		}
		events = append(events, lockEvent{pos: pos, key: key, lock: lock, deferred: deferred})
	}
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if s.inScope(n.Pos()) {
				record(n.Call, true, n.Pos())
			}
			return false
		case *ast.CallExpr:
			if s.inScope(n.Pos()) {
				record(n, false, n.Pos())
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	for i := range events {
		events[i].depth = blockDepth(s.body, events[i].pos)
	}

	var intervals []lockInterval
	open := map[string][]lockEvent{} // key -> stack of open Lock events
	for _, e := range events {
		if e.lock {
			open[e.key] = append(open[e.key], e)
			continue
		}
		stack := open[e.key]
		if len(stack) == 0 {
			continue // unlock of a lock taken by the caller
		}
		top := stack[len(stack)-1]
		if !e.deferred && e.depth > top.depth {
			// Early-exit unlock (unlock-and-return inside a branch):
			// the fall-through path still holds the lock.
			continue
		}
		open[e.key] = stack[:len(stack)-1]
		end := e.pos
		if e.deferred {
			end = s.body.End()
		}
		intervals = append(intervals, lockInterval{e.key, top.pos, end})
	}
	for key, stack := range open {
		for _, start := range stack {
			intervals = append(intervals, lockInterval{key, start.pos, s.body.End()})
		}
	}
	return intervals
}

// blockDepth counts the blocks of body enclosing pos.
func blockDepth(body *ast.BlockStmt, pos token.Pos) int {
	d := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			if n.Pos() <= pos && pos < n.End() {
				d++
			}
		}
		return true
	})
	return d
}

// compositeSpans collects the source spans of composite literals.
func compositeSpans(files []*ast.File) []lockInterval {
	var spans []lockInterval
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				spans = append(spans, lockInterval{start: cl.Pos(), end: cl.End()})
			}
			return true
		})
	}
	return spans
}

func within(spans []lockInterval, pos token.Pos, key string) bool {
	for _, sp := range spans {
		if sp.key == key && sp.start <= pos && pos < sp.end {
			return true
		}
	}
	return false
}

func checkScope(pass *analysis.Pass, s *scope, held []lockInterval, lockedMutexes []string,
	atomicFields map[*types.Var]bool, atomicUses map[*ast.SelectorExpr]bool,
	guarded map[*types.Var]guard, inComposite []lockInterval) {
	info := pass.TypesInfo
	ast.Inspect(s.body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !s.inScope(sel.Pos()) {
			return true
		}
		fv := fieldOf(info, sel)
		if fv == nil {
			return true
		}
		// Rule 1: plain access of an atomically-accessed field.
		if atomicFields[fv] && !atomicUses[sel] {
			pass.Reportf(sel.Pos(),
				"plain access of %s.%s, which is accessed with sync/atomic elsewhere: every access must be atomic",
				fieldOwner(fv), fv.Name())
		}
		// Rule 2: guarded field without its mutex.
		g, ok := guarded[fv]
		if !ok {
			return true
		}
		for _, m := range lockedMutexes {
			if m == g.mutex {
				return true
			}
		}
		if within(inComposite, sel.Pos(), "") {
			return true // construction, not shared access
		}
		base := baseString(sel.X)
		if base == "" {
			return true // unmatchable base; assume a wrapper manages it
		}
		key := base + "." + g.mutex
		if !within(held, sel.Pos(), key) {
			pass.Reportf(sel.Pos(),
				"access of %s.%s without holding %s (field is //axsnn:guardedby %s)",
				base, fv.Name(), key, g.mutex)
		}
		return true
	})
}

// fieldOwner names the struct type a field belongs to, for messages.
func fieldOwner(fv *types.Var) string {
	// The owner is not directly reachable from the field object; fall
	// back to the package-qualified field position's best description.
	if fv.Pkg() != nil {
		return fv.Pkg().Name()
	}
	return "?"
}
