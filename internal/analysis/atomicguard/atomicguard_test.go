package atomicguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicguard"
)

func TestAtomicGuard(t *testing.T) {
	analysistest.Run(t, "testdata", atomicguard.Analyzer)
}
