// Package guard exercises both atomicguard rules: mixed plain/atomic
// access of a field, and //axsnn:guardedby mutex discipline.
package guard

import (
	"sync"
	"sync/atomic"
)

// Counter mixes an atomic counter with a mutex-guarded table.
type Counter struct {
	n     int64
	mu    sync.Mutex
	state map[string]int //axsnn:guardedby mu
}

// NewCounter constructs: composite-literal initialization is exempt.
func NewCounter() *Counter {
	return &Counter{state: map[string]int{}}
}

// Inc is the sanctioned atomic access.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Load is also sanctioned.
func (c *Counter) Load() int64 {
	return atomic.LoadInt64(&c.n)
}

// BadRead reads the atomic field plainly.
func (c *Counter) BadRead() int64 {
	return c.n // want `plain access of guard.n`
}

// BadWrite writes it plainly.
func (c *Counter) BadWrite() {
	c.n = 0 // want `plain access of guard.n`
}

// Get holds the mutex for the whole call via defer.
func (c *Counter) Get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state[k]
}

// Race reads the guarded table with no lock.
func (c *Counter) Race(k string) int {
	return c.state[k] // want `access of c.state without holding c.mu`
}

// Window holds the lock for part of the function: the access after
// Unlock races.
func (c *Counter) Window(k string) int {
	c.mu.Lock()
	v := c.state[k]
	c.mu.Unlock()
	v += c.state[k] // want `access of c.state without holding c.mu`
	return v
}

// EarlyExit unlocks on the early-return branch only; the fall-through
// path still holds mu, so the access after the branch is guarded.
func (c *Counter) EarlyExit(k string, skip bool) int {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return 0
	}
	v := c.state[k]
	c.mu.Unlock()
	return v
}

// flushLocked documents that its callers hold mu.
//
//axsnn:locked mu
func (c *Counter) flushLocked() {
	clear(c.state)
}

// Flush takes the lock and delegates.
func (c *Counter) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flushLocked()
}

// Async returns a closure that takes the lock itself: clean.
func (c *Counter) Async(k string) func() int {
	return func() int {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.state[k]
	}
}

// Goroutine leaks a guarded access into a goroutine that outlives the
// critical section.
func (c *Counter) Goroutine(k string, out chan<- int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		out <- c.state[k] // want `access of c.state without holding c.mu`
	}()
}

// Typed atomics are safe by construction: no diagnostics.
type Typed struct {
	v atomic.Int64
}

func (t *Typed) Inc() int64 {
	return t.v.Add(1)
}

func (t *Typed) Get() int64 {
	return t.v.Load()
}

// BadDecl omits the mutex name.
type BadDecl struct {
	v int /* want `guardedby directive must name the guarding mutex field` */ //axsnn:guardedby
}
