module fix

go 1.23
