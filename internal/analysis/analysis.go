// Package analysis is a self-contained static-analysis framework
// mirroring the golang.org/x/tools/go/analysis API shape on the
// standard library alone (the build environment is hermetic — no
// network, no module downloads — so x/tools cannot be a dependency).
// It exists to machine-check the invariants the repo's performance
// work rests on: zero-allocation hot paths, paired pool
// acquire/release, and atomically- or mutex-guarded shared state.
//
// An Analyzer inspects one type-checked package through a Pass and
// reports diagnostics. Cross-package reasoning (a hot-path kernel in
// internal/stream calling an allocating helper in internal/dvs) rides
// on function facts: every analyzed function exports a short summary
// string, and downstream packages — analyzed later in dependency
// order, or in a separate `go vet -vettool` process via vetx files —
// import those summaries instead of re-reading callee bodies.
//
// The four production analyzers live in subpackages (hotpathalloc,
// poolrelease, atomicguard, forbiddenapi); the load subpackage is the
// driver (go list + go/types), analysistest the golden-file test
// harness, and cmd/axsnn-lint the multichecker binary.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and fact storage.
	// It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description `axsnn-lint -help` prints.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass connects an Analyzer to the single package being analyzed.
// The driver constructs one Pass per (analyzer, package) pair.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test syntax; test files are excluded by the driver
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// ReadFact returns the fact exported for fn by this same analyzer
	// when fn's package was analyzed (possibly in another process, via
	// a vetx file). The empty string with ok=true means "analyzed and
	// clean"; ok=false means fn's package was never analyzed (stdlib).
	ReadFact func(fn *types.Func) (fact string, ok bool)
	// ExportFact records a fact for a function of this package so
	// later passes over importing packages can read it.
	ExportFact func(fn *types.Func, fact string)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FuncKey is the stable cross-process identity facts are stored under:
// "pkgpath.Name" for package functions, "pkgpath.Recv.Name" for
// methods (pointer receivers are dereferenced, so *Network and Network
// methods share the Network namespace, as Go itself requires).
func FuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// ---------------------------------------------------------------------------
// Directives
//
// The repo's invariants are declared in //axsnn: comment directives
// (the same grammar as //go: directives — no space after the slashes):
//
//	//axsnn:hotpath                 function must be allocation-free
//	//axsnn:allow-alloc <reason>    excuse an allocation (line or function)
//	//axsnn:guardedby <mutex>       struct field is guarded by the named mutex
//	//axsnn:locked <mutex>          function is called with the mutex held

const directivePrefix = "//axsnn:"

// A Directive is one parsed //axsnn: comment.
type Directive struct {
	Pos  token.Pos
	Name string // "hotpath", "allow-alloc", ...
	Args string // remainder of the line, trimmed
}

// parseDirective parses one comment, returning ok=false for ordinary
// comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return Directive{}, false
	}
	rest := strings.TrimPrefix(c.Text, directivePrefix)
	name, args, _ := strings.Cut(rest, " ")
	return Directive{Pos: c.Pos(), Name: strings.TrimSpace(name), Args: strings.TrimSpace(args)}, true
}

// FuncDirective returns the named directive from decl's doc comment.
func FuncDirective(decl *ast.FuncDecl, name string) (Directive, bool) {
	if decl.Doc == nil {
		return Directive{}, false
	}
	for _, c := range decl.Doc.List {
		if d, ok := parseDirective(c); ok && d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}

// FieldDirective returns the named directive from a struct field's doc
// or trailing line comment.
func FieldDirective(f *ast.Field, name string) (Directive, bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok && d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// ---------------------------------------------------------------------------
// Line-level excusals
//
// A line-level //axsnn:allow-alloc excuses the statement it is
// attached to: the statement its line belongs to (trailing comment) or
// the first statement starting on a later line (preceding comment).
// Excusals are statement-granular so a multi-line construct — a panic
// whose fmt.Sprintf arguments wrap — is covered by one directive.

// An Excusal is one line-level allow-alloc region.
type Excusal struct {
	Directive Directive
	// Start/End bound the excused source span (token.NoPos End means
	// the directive bound to no statement).
	Start, End token.Pos
	// Used records whether any violation was suppressed by this
	// excusal (unused excusals are worth a diagnostic of their own,
	// but are currently just ignored).
	Used bool
}

// Excusals collects the allow-alloc excusals of a file: the
// function-level set (by *ast.FuncDecl) and the statement-level list.
type Excusals struct {
	fset  *token.FileSet
	spans []*Excusal
}

// CollectExcusals resolves every line-level directive with the given
// name (e.g. "allow-alloc") in file to the statement it excuses.
// Directives in function doc comments are function-level and not
// collected here (see FuncDirective).
func CollectExcusals(fset *token.FileSet, file *ast.File, name string) *Excusals {
	ex := &Excusals{fset: fset}
	// Gather directive comments that are NOT part of a FuncDecl doc.
	docs := map[*ast.Comment]bool{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Doc != nil {
			for _, c := range fd.Doc.List {
				docs[c] = true
			}
		}
	}
	var dirs []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if docs[c] {
				continue
			}
			if d, ok := parseDirective(c); ok && d.Name == name {
				dirs = append(dirs, d)
			}
		}
	}
	if len(dirs) == 0 {
		return ex
	}
	// Collect statement spans, innermost-last via Inspect order.
	type span struct{ start, end token.Pos }
	var stmts []span
	ast.Inspect(file, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok {
			stmts = append(stmts, span{s.Pos(), s.End()})
		}
		return true
	})
	for i := range dirs {
		d := &dirs[i]
		dLine := fset.Position(d.Pos).Line
		// Trailing comment first: the directive excuses the whole
		// statement written on its line — the outermost statement
		// starting there, so a multi-line call with a closure argument
		// is covered end to end. On a continuation line it binds to the
		// smallest statement covering the line; when no statement
		// shares the line the directive is a preceding comment, bound
		// to the statement starting on the next line.
		best := span{}
		for _, s := range stmts {
			if fset.Position(s.start).Line == dLine {
				if best.end == token.NoPos || (s.end-s.start) > (best.end-best.start) {
					best = s
				}
			}
		}
		if best.end == token.NoPos {
			for _, s := range stmts {
				if fset.Position(s.start).Line <= dLine && dLine <= fset.Position(s.end).Line {
					if best.end == token.NoPos || (s.end-s.start) < (best.end-best.start) {
						best = s
					}
				}
			}
		}
		if best.end == token.NoPos {
			for _, s := range stmts {
				if fset.Position(s.start).Line == dLine+1 {
					if best.end == token.NoPos || (s.end-s.start) < (best.end-best.start) {
						best = s
					}
				}
			}
		}
		ex.spans = append(ex.spans, &Excusal{Directive: *d, Start: best.start, End: best.end})
	}
	return ex
}

// Excused reports whether pos falls inside an excused statement,
// returning the directive that excuses it.
func (ex *Excusals) Excused(pos token.Pos) (Directive, bool) {
	for _, e := range ex.spans {
		if e.End != token.NoPos && e.Start <= pos && pos < e.End {
			e.Used = true
			return e.Directive, true
		}
	}
	return Directive{}, false
}

// MissingReasons returns the allow-alloc directives (statement-level)
// that carry no reason — the escape hatch is only honored when it
// documents why the allocation is acceptable.
func (ex *Excusals) MissingReasons() []Directive {
	var out []Directive
	for _, e := range ex.spans {
		if e.Directive.Args == "" {
			out = append(out, e.Directive)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Function inventory and static call graph

// A FuncInfo is one declared function with its statically-resolved
// callees. Calls inside nested function literals are attributed to the
// enclosing declaration.
type FuncInfo struct {
	Decl *ast.FuncDecl
	Obj  *types.Func
	File *ast.File
	// Calls maps each statically-resolved callee to its first call
	// site in this function.
	Calls map[*types.Func]token.Pos
	// CallOrder lists callees in source order (for deterministic
	// reporting).
	CallOrder []*types.Func
}

// PackageFuncs inventories the package's declared functions and their
// static call graphs.
func PackageFuncs(pass *Pass) map[*types.Func]*FuncInfo {
	funcs := map[*types.Func]*FuncInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{Decl: fd, Obj: obj, File: file, Calls: map[*types.Func]token.Pos{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pass.TypesInfo, call); callee != nil {
					if _, seen := fi.Calls[callee]; !seen {
						fi.Calls[callee] = call.Pos()
						fi.CallOrder = append(fi.CallOrder, callee)
					}
				}
				return true
			})
			funcs[obj] = fi
		}
	}
	return funcs
}

// StaticCallee resolves the statically-known target of a call:
// package-level functions, qualified pkg.F references and methods on
// concrete receiver types. Calls through function values and interface
// methods return nil — their targets are unknowable without
// whole-program analysis, and the hot-path analyzers deliberately
// treat them as out of scope (the repo's kernels are direct-call).
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// Interface dispatch is dynamic.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// No selection: a qualified identifier (pkg.F).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Hot-path set

// HotpathNamePackages are the packages whose *Into / *Scratch kernel
// entry points are hot-path roots by name, with no annotation needed
// (acquire/release/constructor helpers are exempt: they allocate by
// design, on first use or shape change).
var HotpathNamePackages = map[string]bool{
	"repro/internal/tensor": true,
	"repro/internal/snn":    true,
}

// implicitHotpathName reports whether a function name is a kernel
// entry point by convention in HotpathNamePackages.
func implicitHotpathName(name string) bool {
	if strings.HasPrefix(name, "Acquire") || strings.HasPrefix(name, "Release") ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
		return false
	}
	return strings.HasSuffix(name, "Into") || strings.HasSuffix(name, "Scratch")
}

// Hotpath describes one function's membership in the hot-path set.
type Hotpath struct {
	Info *FuncInfo
	// Why explains membership: "annotated //axsnn:hotpath", "kernel
	// entry point by name", or "reachable from <root>".
	Why string
}

// HotpathSet computes the package's hot-path functions: the annotated
// and name-implied roots plus everything transitively reachable from
// them through static in-package calls. Functions carrying a
// function-level allow-alloc directive are excluded (and stop
// propagation): they have opted out with a documented reason.
func HotpathSet(pass *Pass, funcs map[*types.Func]*FuncInfo) map[*types.Func]*Hotpath {
	set := map[*types.Func]*Hotpath{}
	excused := map[*types.Func]bool{}
	var queue []*types.Func
	var objs []*types.Func
	for obj := range funcs {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return funcs[objs[i]].Decl.Pos() < funcs[objs[j]].Decl.Pos() })
	for _, obj := range objs {
		fi := funcs[obj]
		if _, ok := FuncDirective(fi.Decl, "allow-alloc"); ok {
			excused[obj] = true
			continue
		}
		if _, ok := FuncDirective(fi.Decl, "hotpath"); ok {
			set[obj] = &Hotpath{Info: fi, Why: "annotated //axsnn:hotpath"}
			queue = append(queue, obj)
		} else if HotpathNamePackages[pass.Pkg.Path()] && implicitHotpathName(obj.Name()) {
			set[obj] = &Hotpath{Info: fi, Why: "kernel entry point by name"}
			queue = append(queue, obj)
		}
	}
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		fi := funcs[obj]
		for _, callee := range fi.CallOrder {
			cfi, inPkg := funcs[callee]
			if !inPkg || excused[callee] {
				continue
			}
			if _, seen := set[callee]; seen {
				continue
			}
			set[callee] = &Hotpath{Info: cfi, Why: fmt.Sprintf("reachable from %s", obj.Name())}
			queue = append(queue, callee)
		}
	}
	return set
}

// FuncExcused reports whether decl opts out of hot-path checking via a
// function-level allow-alloc directive.
func FuncExcused(decl *ast.FuncDecl) bool {
	_, ok := FuncDirective(decl, "allow-alloc")
	return ok
}
