package forbiddenapi_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/forbiddenapi"
)

func TestForbiddenAPI(t *testing.T) {
	analysistest.Run(t, "testdata", forbiddenapi.Analyzer)
}
