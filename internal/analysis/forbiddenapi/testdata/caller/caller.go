// Package caller exercises cross-package fact flow for forbidden APIs.
package caller

import "fix/dep"

//axsnn:hotpath
func Hot() int64 {
	return dep.Stamp() // want `calls dep.Stamp: calls time.Now: time.Now is forbidden`
}
