// Package dep provides a helper whose forbidden call must surface in
// importers through facts.
package dep

import "time"

// Stamp calls time.Now; hot callers must not use it.
func Stamp() int64 {
	return time.Now().UnixNano()
}
