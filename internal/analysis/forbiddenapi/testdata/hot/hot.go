// Package hot exercises the forbidden-API set inside hot-path code:
// time.Now, global math/rand, fmt, and non-constant panics.
package hot

import (
	"fmt"
	"math/rand"
	"time"
)

//axsnn:hotpath
func Stamp() int64 {
	return time.Now().UnixNano() // want `calls time.Now: time.Now is forbidden`
}

//axsnn:hotpath
func Jitter() float64 {
	return rand.Float64() // want `global math/rand.Float64 is forbidden`
}

//axsnn:hotpath
func Format(x int) string {
	return fmt.Sprintf("%d", x) // want `calls fmt.Sprintf: fmt.Sprintf is forbidden`
}

// ConstGuard panics with a constant message: an invariant guard, allowed.
//
//axsnn:hotpath
func ConstGuard(n int) {
	if n < 0 {
		panic("n must be non-negative")
	}
}

//axsnn:hotpath
func VarGuard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n=%d", n)) // want `panic with non-constant argument` `calls fmt.Sprintf`
	}
}

//axsnn:hotpath
func ExcusedGuard(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n=%d", n)) //axsnn:allow-alloc cold misuse guard; formats once before dying
	}
}

// Entry pulls stamp into the hot-path set; the forbidden call is
// reported inside stamp.
//
//axsnn:hotpath
func Entry() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().UnixNano() // want `calls time.Now`
}

// ColdLog is not hot: every API is fine here.
func ColdLog(x int) string {
	return fmt.Sprintf("%d at %v", x, time.Now())
}
