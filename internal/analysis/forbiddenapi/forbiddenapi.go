// Package forbiddenapi bans APIs that have no business inside
// hot-path functions (the same set hotpathalloc checks: annotated
// //axsnn:hotpath roots, *Into/*Scratch kernels, and their in-package
// static call closure):
//
//   - time.Now — kernels must be time-free so runs are reproducible;
//     timing belongs to callers and benchmarks.
//   - global math/rand functions — they serialize on the global
//     source's lock and are not seedable per worker; hot code threads
//     explicit *rand.Rand state (internal/rng).
//   - fmt.* — formats through reflection and allocates.
//   - reflect.* — never on a hot path.
//   - panic with a non-constant argument — building the panic value
//     allocates, and a non-constant panic in kernel code is usually a
//     formatted message on a path that can fire inside shared pool
//     worker goroutines, where an uncaught panic kills the process.
//     Constant-message panics (invariant guards) are allowed.
//
// Violations inside module dependencies are carried by function facts,
// so a hot kernel calling a helper that calls time.Now is caught at
// the call site. //axsnn:allow-alloc <reason> excuses a statement or
// function here exactly as it does for hotpathalloc (a cold
// shape-guard panic excused for allocation is excused for its
// formatted panic too, under one directive).
package forbiddenapi

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "forbiddenapi",
	Doc:  "no time.Now, global math/rand, fmt, reflect, or non-constant panic in hot-path functions",
	Run:  run,
}

type violation struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	funcs := analysis.PackageFuncs(pass)
	exc := map[*ast.File]*analysis.Excusals{}
	for _, f := range pass.Files {
		exc[f] = analysis.CollectExcusals(pass.Fset, f, "allow-alloc")
	}

	own := map[*types.Func][]violation{}
	for obj, fi := range funcs {
		own[obj] = scanBody(pass, fi, exc[fi.File])
	}

	memo := map[*types.Func]string{}
	onStack := map[*types.Func]bool{}
	var fact func(obj *types.Func) string
	fact = func(obj *types.Func) string {
		if f, ok := memo[obj]; ok {
			return f
		}
		if onStack[obj] {
			return ""
		}
		fi := funcs[obj]
		if analysis.FuncExcused(fi.Decl) {
			memo[obj] = ""
			return ""
		}
		if vs := own[obj]; len(vs) > 0 {
			f := fmt.Sprintf("%s (at %s)", vs[0].msg, shortPos(pass.Fset, vs[0].pos))
			memo[obj] = f
			return f
		}
		onStack[obj] = true
		defer delete(onStack, obj)
		for _, callee := range fi.CallOrder {
			if _, excused := exc[fi.File].Excused(fi.Calls[callee]); excused {
				continue
			}
			var cf string
			if _, inPkg := funcs[callee]; inPkg {
				cf = fact(callee)
			} else if sv := stdlibViolation(callee); sv != "" {
				// The direct rule outranks an imported fact so a vet
				// run that built facts for stdlib dependencies reports
				// the same message as the standalone mode.
				cf = sv
			} else if imported, ok := pass.ReadFact(callee); ok {
				cf = imported
			}
			if cf != "" {
				f := fmt.Sprintf("calls %s: %s", calleeName(callee), cf)
				memo[obj] = f
				return f
			}
		}
		memo[obj] = ""
		return ""
	}

	hot := analysis.HotpathSet(pass, funcs)
	var hotObjs []*types.Func
	for obj := range hot {
		hotObjs = append(hotObjs, obj)
	}
	sort.Slice(hotObjs, func(i, j int) bool {
		return hot[hotObjs[i]].Info.Decl.Pos() < hot[hotObjs[j]].Info.Decl.Pos()
	})
	for _, obj := range hotObjs {
		h := hot[obj]
		for _, v := range own[obj] {
			pass.Reportf(v.pos, "%s in hot-path function %s (%s)", v.msg, obj.Name(), h.Why)
		}
		for _, callee := range h.Info.CallOrder {
			if _, inPkg := funcs[callee]; inPkg {
				continue
			}
			pos := h.Info.Calls[callee]
			if _, excused := exc[h.Info.File].Excused(pos); excused {
				continue
			}
			var cf string
			if sv := stdlibViolation(callee); sv != "" {
				cf = sv
			} else if imported, ok := pass.ReadFact(callee); ok {
				cf = imported
			}
			if cf != "" {
				pass.Reportf(pos, "hot-path function %s (%s) calls %s: %s",
					obj.Name(), h.Why, calleeName(callee), cf)
			}
		}
	}

	for obj := range funcs {
		pass.ExportFact(obj, fact(obj))
	}
	return nil
}

// stdlibViolation classifies a direct call to a function outside the
// analyzed module. Only the named APIs are forbidden; everything else
// is hotpathalloc's concern.
func stdlibViolation(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	recv := fn.Type().(*types.Signature).Recv()
	switch {
	case pkg == "time" && fn.Name() == "Now":
		return "time.Now is forbidden (kernels must be time-free and reproducible)"
	case (pkg == "math/rand" || pkg == "math/rand/v2") && recv == nil:
		return fmt.Sprintf("global math/rand.%s is forbidden (serializes on the global source; thread a *rand.Rand)", fn.Name())
	case pkg == "fmt":
		return fmt.Sprintf("fmt.%s is forbidden (reflection-based formatting)", fn.Name())
	case pkg == "reflect":
		return fmt.Sprintf("reflect.%s is forbidden", fn.Name())
	}
	return ""
}

// scanBody collects the function's own forbidden constructs: panics
// with non-constant arguments. Forbidden calls are resolved through
// the call graph, not here.
func scanBody(pass *analysis.Pass, fi *analysis.FuncInfo, exc *analysis.Excusals) []violation {
	var out []violation
	info := pass.TypesInfo
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "panic" || len(call.Args) != 1 {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		if info.Types[call.Args[0]].Value != nil {
			return true // constant-message invariant guard
		}
		if _, excused := exc.Excused(call.Pos()); excused {
			return true
		}
		out = append(out, violation{call.Pos(),
			"panic with non-constant argument (allocates; can kill pool workers)"})
		return true
	})
	return out
}

func calleeName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	key := analysis.FuncKey(fn)
	if i := strings.LastIndex(key, "/"); i >= 0 {
		key = key[i+1:]
	}
	return key
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
