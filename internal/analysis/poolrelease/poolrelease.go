// Package poolrelease checks that every pooled acquire is paired with
// a deferred release in the same function, on all paths. The serving
// stack's bounded pools (the snn inference and training arenas, the
// serve clone pool) leak units under error and panic paths when a
// release is manual — exactly the leak class a panicking batch exposed
// in stream.classifyBatch before its release was deferred.
//
// For each call to a known acquire method the analyzer requires one of:
//
//   - the result is bound to a variable released by the paired release
//     method in a defer (directly, or inside a deferred function
//     literal);
//   - the result is returned (ownership transfers to the caller);
//   - the result is stored into a struct field, map, slice element or
//     global (ownership is stashed; lifetime is managed elsewhere).
//
// A plain (non-deferred) release is a diagnostic: the code runs today,
// but a panic or early error return between acquire and release leaks
// the unit. An acquire inside a loop whose defer sits outside the loop
// is also a diagnostic — the defer runs once per function, not per
// iteration. An acquire whose result is discarded is always a leak.
//
// The escape hatch is //axsnn:allow-manual-release <reason> on the
// release's (or acquire's) statement, or in the function's doc
// comment, for the rare shape the analyzer cannot follow — e.g. a unit
// released on another goroutine, or a loop-scoped acquire/release pair
// whose body must not be a closure for allocation reasons.
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc:  "every pooled Acquire must have a deferred Release on all paths",
	Run:  run,
}

// pairs maps acquire method names to their paired release method names.
var pairs = map[string]string{
	"AcquireScratch":      "Release",
	"AcquireTrainScratch": "ReleaseTrain",
	"AcquireClone":        "ReleaseClone",
	"AcquireSlot":         "ReleaseSlot",
}

const escapeDirective = "allow-manual-release"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		exc := analysis.CollectExcusals(pass.Fset, file, escapeDirective)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fd, escapeDirective); ok {
				continue
			}
			// Each function literal is its own scope: a defer inside a
			// closure releases when the closure returns, not when the
			// enclosing function does.
			for _, s := range functionScopes(fd) {
				checkScope(pass, s, exc)
			}
		}
	}
	return nil
}

// A scope is one function body with nested literals masked out.
type scope struct {
	body *ast.BlockStmt
	lits []*ast.FuncLit // immediate nested literals (excluded spans)
}

func functionScopes(fd *ast.FuncDecl) []*scope {
	var bodies []*ast.BlockStmt
	bodies = append(bodies, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	var scopes []*scope
	for _, b := range bodies {
		s := &scope{body: b}
		ast.Inspect(b, func(n ast.Node) bool {
			if n == b {
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				s.lits = append(s.lits, lit)
				return false
			}
			return true
		})
		scopes = append(scopes, s)
	}
	return scopes
}

// inScope reports whether pos belongs to the scope directly, not to a
// nested function literal.
func (s *scope) inScope(pos token.Pos) bool {
	if pos < s.body.Pos() || pos >= s.body.End() {
		return false
	}
	for _, lit := range s.lits {
		if lit.Pos() <= pos && pos < lit.End() {
			return false
		}
	}
	return true
}

// acquireCall matches a call to a known acquire method.
func acquireCall(call *ast.CallExpr) (acquire, release string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	r, ok := pairs[sel.Sel.Name]
	return sel.Sel.Name, r, ok
}

// refersTo reports whether call releases obj: obj appears as an
// argument or as the method receiver.
func refersTo(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == obj {
			return true
		}
	}
	return false
}

// A releaseSite is one candidate release call in a scope.
type releaseSite struct {
	pos      token.Pos // position of the defer (or the call, when plain)
	callPos  token.Pos
	name     string
	call     *ast.CallExpr
	deferred bool
}

func checkScope(pass *analysis.Pass, s *scope, exc *analysis.Excusals) {
	info := pass.TypesInfo

	// Loop spans, innermost-match, for the defer-outside-loop check.
	var loops []ast.Node
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if s.inScope(n.Pos()) {
				loops = append(loops, n)
			}
		}
		return true
	})
	inLoop := func(pos token.Pos) ast.Node {
		var innermost ast.Node
		for _, l := range loops {
			if l.Pos() <= pos && pos < l.End() {
				innermost = l
			}
		}
		return innermost
	}

	// Collect the scope's release sites: deferred (directly or inside
	// a deferred literal) and plain calls.
	var releases []releaseSite
	releaseNames := map[string]bool{}
	for _, r := range pairs {
		releaseNames[r] = true
	}
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if !s.inScope(n.Pos()) {
				return true
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && releaseNames[sel.Sel.Name] {
							releases = append(releases, releaseSite{n.Pos(), call.Pos(), sel.Sel.Name, call, true})
						}
					}
					return true
				})
				return true
			}
			if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && releaseNames[sel.Sel.Name] {
				releases = append(releases, releaseSite{n.Pos(), n.Call.Pos(), sel.Sel.Name, n.Call, true})
			}
			return false
		case *ast.CallExpr:
			if !s.inScope(n.Pos()) {
				return true
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && releaseNames[sel.Sel.Name] {
				releases = append(releases, releaseSite{n.Pos(), n.Pos(), sel.Sel.Name, n, false})
			}
		}
		return true
	})

	// Walk the scope's acquires.
	ast.Inspect(s.body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if !s.inScope(stmt.Pos()) || len(stmt.Lhs) != len(stmt.Rhs) {
				return true
			}
			for i, rhs := range stmt.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				acquire, release, ok := acquireCall(call)
				if !ok {
					continue
				}
				lhs := ast.Unparen(stmt.Lhs[i])
				id, isIdent := lhs.(*ast.Ident)
				if !isIdent || id.Name == "_" {
					if !isIdent {
						// Stored straight into a field/map/element:
						// ownership is stashed with the owner.
						continue
					}
					pass.Reportf(call.Pos(), "result of %s is discarded: the pooled unit leaks", acquire)
					continue
				}
				var obj types.Object
				if stmt.Tok == token.DEFINE {
					obj = info.Defs[id]
				} else {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				checkAcquire(pass, s, exc, call, acquire, release, obj, releases, inLoop)
			}
		case *ast.ExprStmt:
			if !s.inScope(stmt.Pos()) {
				return true
			}
			if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
				if acquire, _, ok := acquireCall(call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded: the pooled unit leaks", acquire)
				}
			}
		}
		return true
	})
}

// checkAcquire validates one acquire bound to obj.
func checkAcquire(pass *analysis.Pass, s *scope, exc *analysis.Excusals, call *ast.CallExpr,
	acquire, release string, obj types.Object, releases []releaseSite, inLoop func(token.Pos) ast.Node) {
	info := pass.TypesInfo

	// Deferred release?
	for _, r := range releases {
		if !r.deferred || r.name != release || !refersTo(info, r.call, obj) {
			continue
		}
		if loop := inLoop(call.Pos()); loop != nil && !(loop.Pos() <= r.pos && r.pos < loop.End()) {
			pass.Reportf(call.Pos(),
				"%s inside a loop is released by a defer outside it: the defer runs once per function, every earlier iteration leaks", acquire)
		}
		return
	}
	// Plain release?
	for _, r := range releases {
		if r.deferred || r.name != release || !refersTo(info, r.call, obj) {
			continue
		}
		if _, ok := exc.Excused(r.callPos); ok {
			return
		}
		if _, ok := exc.Excused(call.Pos()); ok {
			return
		}
		pass.Reportf(r.callPos,
			"%s of %s must be deferred: an error return or panic between acquire and release leaks the pooled unit", release, obj.Name())
		return
	}
	// Ownership transfer?
	if escapes(info, s, obj) {
		return
	}
	if _, ok := exc.Excused(call.Pos()); ok {
		return
	}
	pass.Reportf(call.Pos(), "%s result %s is never released: defer %s", acquire, obj.Name(), release)
}

// escapes reports whether obj's ownership leaves the scope: returned,
// stored into a field/map/element/global, sent on a channel, or packed
// into a composite literal.
func escapes(info *types.Info, s *scope, obj types.Object) bool {
	found := false
	ast.Inspect(s.body, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		if !s.inScope(n.Pos()) {
			return true // still descend: an escape inside a closure escapes too
		}
		isObj := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && info.Uses[id] == obj
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isObj(r) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && isObj(rhs) {
					switch lhs := ast.Unparen(n.Lhs[i]).(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
						found = true
					case *ast.Ident:
						if v, ok := info.Uses[lhs].(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
							found = true // package-level variable
						}
					}
				}
			}
		case *ast.SendStmt:
			if isObj(n.Value) {
				found = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isObj(el) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
