// Package pool exercises acquire/release pairing: deferred releases,
// plain releases, leaks, loop-scoped defers, ownership transfer, and
// the manual-release escape hatch.
package pool

// Unit is a pooled work unit.
type Unit struct{ data []float64 }

// Pool is a bounded free-list pool.
type Pool struct{ free []*Unit }

func (p *Pool) AcquireScratch() *Unit {
	if n := len(p.free); n > 0 {
		u := p.free[n-1]
		p.free = p.free[:n-1]
		return u
	}
	return &Unit{data: make([]float64, 64)}
}

func (p *Pool) Release(u *Unit) { p.free = append(p.free, u) }

func (p *Pool) AcquireTrainScratch() *Unit { return p.AcquireScratch() }
func (p *Pool) ReleaseTrain(u *Unit)       { p.Release(u) }
func (p *Pool) AcquireClone() *Unit        { return p.AcquireScratch() }
func (p *Pool) ReleaseClone(u *Unit)       { p.Release(u) }
func (p *Pool) AcquireSlot() *Unit         { return p.AcquireScratch() }
func (p *Pool) ReleaseSlot(u *Unit)        { p.Release(u) }
