package pool

// Good defers the release directly.
func Good(p *Pool) float64 {
	u := p.AcquireScratch()
	defer p.Release(u)
	return u.data[0]
}

// GoodLit releases inside a deferred function literal.
func GoodLit(p *Pool) float64 {
	u := p.AcquireScratch()
	defer func() {
		p.Release(u)
	}()
	return u.data[0]
}

// GoodTrain covers the training-arena pair.
func GoodTrain(p *Pool) float64 {
	u := p.AcquireTrainScratch()
	defer p.ReleaseTrain(u)
	return u.data[0]
}

// Plain releases manually: a panic or early return before the release
// leaks the unit.
func Plain(p *Pool) float64 {
	u := p.AcquireScratch()
	v := u.data[0]
	p.Release(u) // want `Release of u must be deferred`
	return v
}

// Leak never releases.
func Leak(p *Pool) float64 {
	u := p.AcquireScratch() // want `AcquireScratch result u is never released`
	return u.data[0]
}

// Discard drops the result on the floor.
func Discard(p *Pool) {
	p.AcquireClone() // want `result of AcquireClone is discarded`
}

// SlotGood pairs the frame-slot acquire with a deferred release.
func SlotGood(p *Pool) float64 {
	u := p.AcquireSlot()
	defer p.ReleaseSlot(u)
	return u.data[0]
}

// SlotLeak never releases the slot.
func SlotLeak(p *Pool) float64 {
	u := p.AcquireSlot() // want `AcquireSlot result u is never released`
	return u.data[0]
}

// LoopDefer acquires per iteration but defers once.
func LoopDefer(p *Pool, n int) {
	var u *Unit
	for i := 0; i < n; i++ {
		u = p.AcquireScratch() // want `released by a defer outside it`
	}
	if u != nil {
		defer p.Release(u)
	}
}

// LoopScoped wraps each iteration in a closure: the defer runs per
// iteration, so no diagnostic.
func LoopScoped(p *Pool, n int) float64 {
	var acc float64
	for i := 0; i < n; i++ {
		func() {
			u := p.AcquireScratch()
			defer p.Release(u)
			acc += u.data[0]
		}()
	}
	return acc
}

// Handout transfers ownership to the caller.
func Handout(p *Pool) *Unit {
	u := p.AcquireScratch()
	return u
}

type slot struct{ u *Unit }

// Stash stores the unit with its owner.
func Stash(p *Pool, s *slot) {
	s.u = p.AcquireClone()
}

var global *Unit

// Publish parks the unit in a package variable.
func Publish(p *Pool) {
	g := p.AcquireScratch()
	global = g
}

// ManualFunc opts the whole function out.
//
//axsnn:allow-manual-release the unit is released by Close, not here
func ManualFunc(p *Pool) {
	u := p.AcquireScratch()
	u.data[0] = 1
}

// ManualLine excuses one manual release with a reason.
func ManualLine(p *Pool) float64 {
	u := p.AcquireScratch()
	v := u.data[0]
	p.Release(u) //axsnn:allow-manual-release benchmarked loop body; defer cost measured and rejected
	return v
}
