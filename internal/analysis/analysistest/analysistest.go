// Package analysistest runs an analyzer over a fixture module and
// checks its diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// A fixture directory is a real Go module (its own go.mod, so the
// outer module never sees it — directories named testdata are invisible
// to the go tool). Each source line that should produce diagnostics
// carries a trailing comment of quoted regular expressions:
//
//	x := make([]int, n) // want `make allocates`
//	p := &T{}           // want `composite` `boxed`
//
// Every diagnostic must match one expectation on its line and every
// expectation must be matched by one diagnostic; anything unmatched on
// either side fails the test. Lines with no want comment assert the
// absence of diagnostics, so negative cases are just ordinary code.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// wantRe extracts the quoted patterns of a want comment: Go-quoted
// strings or backquoted raw strings.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string // base filename
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module at dir (patterns default to ./...),
// applies the analyzer with facts flowing across fixture packages in
// dependency order, and diffs diagnostics against want comments. It
// returns the findings for any further assertions.
func Run(t *testing.T, dir string, an *analysis.Analyzer, patterns ...string) []load.Finding {
	t.Helper()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := load.Module(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture module %s: %v", dir, err)
	}
	findings, err := load.Run(fset, pkgs, []*analysis.Analyzer{an}, load.NewFactStore())
	if err != nil {
		t.Fatalf("running %s on %s: %v", an.Name, dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWant(t, fset.Position(c.Pos()).Filename,
						fset.Position(c.Pos()).Line, c)...)
				}
			}
		}
	}

	for _, f := range findings {
		var matched bool
		for _, w := range wants {
			if w.matched || !sameFile(w.file, f.Pos.Filename) || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", base(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %s", base(w.file), w.line, w.raw)
		}
	}
	return findings
}

// parseWant extracts the expectations of one comment.
func parseWant(t *testing.T, file string, line int, c *ast.Comment) []*expectation {
	t.Helper()
	text := c.Text
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	quoted := wantRe.FindAllString(rest, -1)
	if len(quoted) == 0 {
		t.Fatalf("%s:%d: malformed want comment: %s", base(file), line, c.Text)
	}
	var out []*expectation
	for _, q := range quoted {
		pattern, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %s: %v", base(file), line, q, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %s: %v", base(file), line, q, err)
		}
		out = append(out, &expectation{file: file, line: line, re: re, raw: q})
	}
	return out
}

func sameFile(a, b string) bool { return base(a) == base(b) }

func base(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
