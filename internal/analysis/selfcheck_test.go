package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicguard"
	"repro/internal/analysis/forbiddenapi"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/load"
	"repro/internal/analysis/poolrelease"
)

// TestRepoClean runs every axsnn-lint analyzer over the whole module —
// the in-process form of `axsnn-lint ./...` — and fails on any finding.
// This is the regression gate: a change that allocates on an annotated
// hot path, drops a deferred Release, or races a guarded field fails
// here even when CI's standalone lint step is skipped.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	fset, pkgs, err := load.Module("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	analyzers := []*analysis.Analyzer{
		hotpathalloc.Analyzer,
		poolrelease.Analyzer,
		atomicguard.Analyzer,
		forbiddenapi.Analyzer,
	}
	findings, err := load.Run(fset, pkgs, analyzers, load.NewFactStore())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
