package load

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// A Finding is one resolved diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package, in the given (dependency)
// order, threading facts through store. Findings are sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*analysis.Analyzer, store *FactStore) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(fset, pkg, analyzers, store)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// RunPackage applies the analyzers to one package, reading and writing
// facts in store.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*analysis.Analyzer, store *FactStore) ([]Finding, error) {
	var findings []Finding
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.NonTest,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
			ReadFact: func(fn *types.Func) (string, bool) {
				return store.Get(a.Name, analysis.FuncKey(fn))
			},
			ExportFact: func(fn *types.Func, fact string) {
				store.Set(a.Name, analysis.FuncKey(fn), fact)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	return findings, nil
}
