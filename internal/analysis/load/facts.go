package load

import (
	"encoding/gob"
	"os"
	"sync"
)

// A FactStore holds per-analyzer function facts, keyed by
// analysis.FuncKey. In the standalone driver one store spans the whole
// run (packages are analyzed in dependency order, so callee facts are
// present before callers ask). In vet-tool mode each process loads the
// stores serialized by its dependencies' processes and serializes its
// own accumulated view — facts travel transitively, so a caller can
// ask about a function two imports away.
type FactStore struct {
	mu sync.Mutex
	// m[analyzer][funcKey] = fact ("" = analyzed, clean).
	m map[string]map[string]string
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[string]map[string]string{}}
}

// Get returns the fact recorded by analyzer for key.
func (s *FactStore) Get(analyzer, key string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.m[analyzer][key]
	return f, ok
}

// Set records a fact.
func (s *FactStore) Set(analyzer, key, fact string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[analyzer] == nil {
		s.m[analyzer] = map[string]string{}
	}
	s.m[analyzer][key] = fact
}

// Merge copies every fact serialized in the gob file at path into the
// store (vet-tool mode: one file per dependency package).
func (s *FactStore) Merge(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var m map[string]map[string]string
	if err := gob.NewDecoder(f).Decode(&m); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for a, facts := range m {
		if s.m[a] == nil {
			s.m[a] = map[string]string{}
		}
		for k, v := range facts {
			s.m[a][k] = v
		}
	}
	return nil
}

// Save serializes the store's full contents to path (the vet tool's
// VetxOutput). An empty store still writes a file: the go command
// treats the output as a build artifact and caches it.
func (s *FactStore) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	s.mu.Lock()
	err = gob.NewEncoder(f).Encode(s.m)
	s.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
