// Package load is the driver side of the analysis framework: it
// resolves package patterns with the go command, type-checks the
// module's sources against the toolchain's export data, and runs
// analyzers over the result in dependency order so function facts flow
// from callee packages to caller packages.
//
// Export data (not source) is how imports resolve: `go list -export`
// has the toolchain compile (or fetch from the build cache) every
// dependency and report its export file, and go/importer's gc mode
// reads those through a lookup hook. That keeps the loader fast — only
// the packages being analyzed are parsed — and wholly standard-library.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked module package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File // all compiled files, test files included
	NonTest    []*ast.File // the subset analyzers see
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Module loads the packages matching patterns (resolved in dir) plus
// nothing else: dependencies are imported from export data. The
// returned slice is in dependency order — a package precedes every
// package that imports it — which is the order facts must flow.
func Module(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Incomplete,Error",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var mod []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, nil, fmt.Errorf("go list output: %v", derr)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			mod = append(mod, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, lp := range mod {
		var files []string
		for _, gf := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, gf))
		}
		pkg, err := Check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// ExportImporter returns a go/types importer resolving import paths
// through a map of compiled export-data files (as produced by
// `go list -export` or handed over in a vet tool config).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check parses and type-checks one package from explicit file paths.
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Files: syntax, Types: tpkg, Info: info}
	for _, f := range syntax {
		name := fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(name, "_test.go") {
			pkg.NonTest = append(pkg.NonTest, f)
		}
	}
	return pkg, nil
}

// NewInfo returns a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
