package exp

import (
	"bytes"
	"fmt"

	"repro/internal/dvs"
	"repro/internal/eval"
	"repro/internal/stream"
	"repro/internal/tensor"
)

// StreamEval routes the gesture fixture through the streaming serving
// path (the engine behind cmd/axsnn-stream): every test recording is
// serialized to its AEDAT wire form and classified window by window
// through stream.Pipeline — bounded-memory decode, windowed
// voxelization, batched arena inference — instead of the in-memory
// LoadAEDAT+Voxelize+PredictBatch path. With one window per recording
// the two paths must agree bit-for-bit (the equivalence the streaming
// test suite pins at unit level, re-asserted here on the real fixture
// and trained model), so the reported agreement is 1.0 by contract.
func StreamEval(o Options) Result {
	f := runGestureFixture(o)
	net := f.acc
	steps := net.Cfg.Steps
	test := f.test

	// In-memory reference: voxelize and batch-predict everything.
	samples := make([][]*tensor.Tensor, test.Len())
	labels := make([]int, test.Len())
	for i, sm := range test.Samples {
		samples[i] = sm.Stream.Voxelize(steps)
		labels[i] = sm.Label
	}
	memClasses := net.PredictBatch(samples)

	// Streaming path: one pipeline reused across recordings, one
	// window spanning each recording.
	dur := test.Samples[0].Stream.Duration
	p, err := stream.NewPipeline(net, stream.Options{
		WindowMS: dur, Steps: steps, Workers: o.Workers,
		SensorW: test.W, SensorH: test.H,
	})
	if err != nil {
		panic(fmt.Sprintf("exp: stream pipeline: %v", err))
	}
	var buf bytes.Buffer
	streamClasses := make([]int, test.Len())
	windows := 0
	for i, sm := range test.Samples {
		// The one-window-per-recording comparison only holds if every
		// recording spans exactly the pinned window; a drifting fixture
		// must fail loudly, not skew the agreement metric.
		if sm.Stream.Duration != dur {
			panic(fmt.Sprintf("exp: test stream %d lasts %gms, fixture window is %gms", i, sm.Stream.Duration, dur))
		}
		buf.Reset()
		if err := dvs.WriteAEDAT(&buf, sm.Stream); err != nil {
			panic(fmt.Sprintf("exp: serializing test stream %d: %v", i, err))
		}
		if err := p.Run(&buf, func(r stream.Result) error {
			if r.Window != 0 {
				return fmt.Errorf("recording emitted window %d, want a single window", r.Window)
			}
			streamClasses[i] = r.Class
			windows++
			return nil
		}); err != nil {
			panic(fmt.Sprintf("exp: streaming test stream %d: %v", i, err))
		}
	}

	agree, streamHits, memHits := 0, 0, 0
	for i := range streamClasses {
		if streamClasses[i] == memClasses[i] {
			agree++
		}
		if streamClasses[i] == labels[i] {
			streamHits++
		}
		if memClasses[i] == labels[i] {
			memHits++
		}
	}
	n := float64(test.Len())

	tbl := eval.Table{
		Title:   "Streaming pipeline vs in-memory path (DVS128 Gesture test split)",
		Headers: []string{"Path", "Accuracy[%]", "Recordings", "Windows"},
		Rows: [][]string{
			{"in-memory (Voxelize+PredictBatch)", fmt.Sprintf("%.1f", 100*float64(memHits)/n), fmt.Sprint(test.Len()), "-"},
			{"streaming (stream.Pipeline)", fmt.Sprintf("%.1f", 100*float64(streamHits)/n), fmt.Sprint(test.Len()), fmt.Sprint(windows)},
		},
	}
	return Result{
		ID: "stream-eval", Title: "Streaming event pipeline equivalence",
		Text: eval.FormatTable(tbl),
		Metrics: map[string]float64{
			"stream_acc": float64(streamHits) / n,
			"mem_acc":    float64(memHits) / n,
			"agreement":  float64(agree) / n,
			"windows":    float64(windows),
		},
		Notes: "Streaming predictions are bit-identical to the in-memory path (agreement 1.0): the pipeline reuses the same voxelization arithmetic and the batched arena forward is per-sample exact at any worker count.",
	}
}
