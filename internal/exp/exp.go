// Package exp contains one runner per figure and table of the paper's
// evaluation (§V). Every runner is deterministic given (Options.Seed,
// Options.Scale) and returns a Result with the rendered artifact, CSV
// data and the key numbers EXPERIMENTS.md records.
//
// The runners are shared by cmd/axsnn-repro, the examples and the
// repository-level benchmarks.
package exp

import (
	"fmt"
	"sync"

	"repro/internal/dataset"
	"repro/internal/dvs"
	"repro/internal/encoding"
	"repro/internal/rng"
	"repro/internal/snn"
)

// Scale selects the experiment size. Axis values (Vth, approximation
// levels, ε) always match the paper; Scale controls dataset sizes,
// epochs, grid density and the divisor applied to the paper's time-step
// axis (pure-Go BPTT over 80 steps × 63 grid cells is the one thing we
// cannot afford at full size; the divisor is recorded in every result).
// Every per-cell fit and every PGD/BIM transfer-set crafting pass runs
// against the snn training arena (snn.TrainScratch), so the grids no
// longer churn the allocator on their BPTT hot loops.
type Scale int

const (
	// Tiny is for unit tests and benchmarks: seconds per experiment.
	Tiny Scale = iota
	// Small is the default for the repro binary: minutes end-to-end.
	Small
	// Paper runs the full 7×9 structural grid.
	Paper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	default:
		return "paper"
	}
}

// ParseScale converts "tiny"/"small"/"paper".
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "paper", "full":
		return Paper, nil
	}
	return Small, fmt.Errorf("exp: unknown scale %q", s)
}

// Options configures a runner.
type Options struct {
	Scale Scale
	Seed  uint64
	// MNISTDir, when set and containing the real IDX files, replaces
	// the synthetic digit corpus.
	MNISTDir string
	// Workers bounds grid parallelism (0 = GOMAXPROCS).
	Workers int
}

// preset holds the per-scale workload parameters.
type preset struct {
	trainN, testN int
	epochs        int
	imgHW         int
	tDiv          int // divide the paper's T axis by this
	vthAxis       []float32
	stepAxis      []int // paper-scale values
	gestureN      int   // train streams (test = gestureN/2)
	gestureDurMS  float64
	gestureSteps  int
	denseHidden   int
	attackIters   int
}

func presetFor(s Scale) preset {
	switch s {
	case Tiny:
		return preset{
			trainN: 300, testN: 60, epochs: 4, imgHW: 12, tDiv: 4,
			vthAxis:  []float32{0.25, 0.75, 1.25, 1.75, 2.25},
			stepAxis: []int{32, 56, 80},
			gestureN: 33, gestureDurMS: 600, gestureSteps: 8,
			denseHidden: 64, attackIters: 5,
		}
	case Small:
		return preset{
			trainN: 600, testN: 120, epochs: 4, imgHW: 14, tDiv: 4,
			vthAxis:  []float32{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25},
			stepAxis: []int{32, 40, 48, 56, 64, 72, 80},
			gestureN: 66, gestureDurMS: 1000, gestureSteps: 12,
			denseHidden: 64, attackIters: 7,
		}
	default: // Paper
		return preset{
			trainN: 1500, testN: 300, epochs: 6, imgHW: 16, tDiv: 2,
			vthAxis:  []float32{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25},
			stepAxis: []int{32, 40, 48, 56, 64, 72, 80},
			gestureN: 110, gestureDurMS: 1600, gestureSteps: 20,
			denseHidden: 96, attackIters: 7,
		}
	}
}

// scaledSteps maps a paper time-step value through the preset divisor.
func (p preset) scaledSteps(paperT int) int {
	t := paperT / p.tDiv
	if t < 3 {
		t = 3
	}
	return t
}

// EpsAxis is the perturbation-budget axis of Figs. 1-3.
var EpsAxis = []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0, 1.5}

// Result is a runner's output.
type Result struct {
	ID    string
	Title string
	// Text is the rendered artifact (curve table / heatmap / table).
	Text string
	// CSV holds machine-readable series keyed by name.
	CSV map[string]string
	// Metrics holds the headline numbers for EXPERIMENTS.md.
	Metrics map[string]float64
	// Notes records interpretation decisions relevant to this artifact.
	Notes string
}

// mnistData builds (or loads) the static train/test sets for a preset.
func mnistData(o Options, p preset) (train, test *dataset.Set) {
	cfg := dataset.DefaultSynthConfig()
	cfg.H, cfg.W = p.imgHW, p.imgHW
	train, test, _ = dataset.MNISTOrSynth(o.MNISTDir, p.trainN, p.testN, cfg, o.Seed)
	return train, test
}

// gestureData builds the event-stream train/test sets for a preset.
func gestureData(o Options, p preset) (train, test *dvs.Set) {
	cfg := dvs.DefaultGestureConfig()
	cfg.Duration = p.gestureDurMS
	train = dvs.GenerateGestureSet(p.gestureN, cfg, o.Seed+500)
	test = dvs.GenerateGestureSet(p.gestureN/2+dvs.GestureClasses, cfg, o.Seed+501)
	return train, test
}

// buildStatic returns the architecture constructor used for the static
// task at this scale: the paper's 7-layer conv topology at Paper scale,
// the dense preset below it (DESIGN.md substitution #4).
func buildStatic(o Options, p preset) func(cfg snn.Config, r *rng.RNG) *snn.Network {
	if o.Scale == Paper {
		return func(cfg snn.Config, r *rng.RNG) *snn.Network {
			return snn.MNISTNet(cfg, 1, p.imgHW, p.imgHW, true, r)
		}
	}
	in := p.imgHW * p.imgHW
	return func(cfg snn.Config, r *rng.RNG) *snn.Network {
		return snn.DenseNet(cfg, in, p.denseHidden, 10, r)
	}
}

// trainOpts returns a fresh-training-options factory for a preset.
func trainOpts(p preset) func() snn.TrainOptions {
	return func() snn.TrainOptions {
		return snn.TrainOptions{
			Epochs:    p.epochs,
			BatchSize: 16,
			Optimizer: snn.NewAdam(2e-3),
			Encoder:   encoding.Rate{},
		}
	}
}

// resultCache memoizes expensive shared computations (the structural
// sweep behind Figs. 4-6/7a) across runners in one process.
var (
	cacheMu sync.Mutex
	cache   = map[string]any{}
)

func cached[T any](key string, compute func() T) T {
	cacheMu.Lock()
	if v, ok := cache[key]; ok {
		cacheMu.Unlock()
		return v.(T)
	}
	cacheMu.Unlock()
	v := compute()
	cacheMu.Lock()
	cache[key] = v
	cacheMu.Unlock()
	return v
}
