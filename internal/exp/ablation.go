package exp

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/encoding"
	"repro/internal/eval"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

// The ablations extend the paper's evaluation along the design choices
// DESIGN.md calls out: the spike-encoding scheme (the paper fixes rate
// coding; TTFS is the alternative its ref [5] studies) and AQF's filter
// constants (the paper fixes s=2, T1=5, T2=50).

// AblationEncoding compares clean and adversarial accuracy of SNNs
// trained with rate, direct and time-to-first-spike coding at the Fig. 1
// structural point.
func AblationEncoding(o Options) Result {
	p := presetFor(o.Scale)
	train, test := mnistData(o, p)

	tbl := eval.Table{
		Title:   "Ablation — spike encoding vs robustness (PGD ε=0.5, level 0.01)",
		Headers: []string{"Encoding", "Clean[%]", "Adv[%]", "AxSNN Adv[%]"},
	}
	metrics := map[string]float64{}
	for _, enc := range []encoding.Encoder{encoding.Rate{}, encoding.Direct{}, encoding.TTFS{}} {
		d := designerWith(o, p, train, test, enc)
		acc := d.TrainAccurate(0.25, p.scaledSteps(32))
		sur := d.TrainSurrogate(0.25, p.scaledSteps(32))
		clean := d.EvaluateSet(acc, test)
		atk := tuneAttack(attack.PGD(0.5), 0.5, p.attackIters)
		atk.Encoder = enc
		adv := d.CraftAdversarial(sur, atk, o.Seed+31)
		advAcc := d.EvaluateSet(acc, adv)
		ax, _ := d.Approximate(acc, 0.01, quant.FP32)
		axAdv := d.EvaluateSet(ax, adv)
		tbl.Rows = append(tbl.Rows, []string{
			enc.Name(),
			fmt.Sprintf("%.1f", 100*clean),
			fmt.Sprintf("%.1f", 100*advAcc),
			fmt.Sprintf("%.1f", 100*axAdv),
		})
		metrics[enc.Name()+"_clean"] = clean
		metrics[enc.Name()+"_adv"] = advAcc
	}
	return Result{
		ID: "ablation-encoding", Title: "Spike-encoding ablation",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Extension of the paper (which fixes rate coding); its ref [5] studies TTFS robustness.",
	}
}

// AblationAQF sweeps the AQF support threshold and temporal window,
// reporting signal retention on clean streams and recovery under the
// sparse attack.
func AblationAQF(o Options) Result {
	f := runGestureFixture(o)

	tbl := eval.Table{
		Title:   "Ablation — AQF constants (level 0.1, qt=15 ms, Sparse attack)",
		Headers: []string{"Support", "T2[ms]", "Clean w/ AQF[%]", "Sparse w/ AQF[%]"},
	}
	metrics := map[string]float64{"baseline": f.cleanAcc}
	ax, _ := f.d.Approximate(f.acc, 0.1, quant.FP32)
	for _, support := range []int{1, 2, 4} {
		for _, t2 := range []float64{25, 50, 100} {
			p := defense.AQFParams{S: 2, T1: 5, T2: t2, Qt: 0.015, Support: support}
			clean := f.d.Evaluate(ax, f.test, &p)
			adv := f.d.Evaluate(ax, f.advSparse, &p)
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", support),
				fmt.Sprintf("%.0f", t2),
				fmt.Sprintf("%.1f", 100*clean),
				fmt.Sprintf("%.1f", 100*adv),
			})
			metrics[fmt.Sprintf("s%d_t%g_clean", support, t2)] = clean
			metrics[fmt.Sprintf("s%d_t%g_adv", support, t2)] = adv
		}
	}
	return Result{
		ID: "ablation-aqf", Title: "AQF constant sensitivity",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "The paper fixes (s,T1,T2)=(2,5,50); this sweep shows the retention/recovery trade-off.",
	}
}

// AblationUAP measures the universal-adversarial-perturbation threat:
// one input-agnostic perturbation, crafted on the surrogate, applied to
// the whole test set, against the AccSNN and AxSNNs.
func AblationUAP(o Options) Result {
	p := presetFor(o.Scale)
	train, test := mnistData(o, p)
	d := designerFor(o, p, train, test)
	acc := d.TrainAccurate(0.25, p.scaledSteps(32))
	sur := d.TrainSurrogate(0.25, p.scaledSteps(32))

	tbl := eval.Table{
		Title:   "Ablation — universal adversarial perturbation (crafted on surrogate)",
		Headers: []string{"eps", "AccSNN[%]", "AxSNN(0.01)[%]", "AxSNN(0.1)[%]"},
	}
	metrics := map[string]float64{"clean": d.EvaluateSet(acc, test)}
	ax1, _ := d.Approximate(acc, 0.01, quant.FP32)
	ax2, _ := d.Approximate(acc, 0.1, quant.FP32)
	for _, eps := range []float64{0.1, 0.3, 0.5} {
		u := attack.NewUniversal(eps)
		u.Encoder = encoding.Rate{}
		delta := u.Compute(sur, train.Subset(60), rngFor(o, 41))
		adv := u.PerturbSet(test, delta)
		a0 := d.EvaluateSet(acc, adv)
		a1 := d.EvaluateSet(ax1, adv)
		a2 := d.EvaluateSet(ax2, adv)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.1f", eps),
			fmt.Sprintf("%.1f", 100*a0),
			fmt.Sprintf("%.1f", 100*a1),
			fmt.Sprintf("%.1f", 100*a2),
		})
		metrics[fmt.Sprintf("accsnn_eps%g", eps)] = a0
		metrics[fmt.Sprintf("ax0.01_eps%g", eps)] = a1
		metrics[fmt.Sprintf("ax0.1_eps%g", eps)] = a2
	}
	return Result{
		ID: "ablation-uap", Title: "Universal perturbation threat",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Extension: input-agnostic perturbations are the deployable variant of the paper's per-input attacks.",
	}
}

// rngFor derives a child RNG for an experiment sub-step.
func rngFor(o Options, salt uint64) *rng.RNG { return rng.New(o.Seed ^ salt<<32) }

// evalFiltered evaluates a network on a BAF-filtered copy of the set.
func evalFiltered(f *gestureFixture, net *snn.Network, set *dvs.Set, baf *defense.BackgroundActivityFilter) float64 {
	return f.d.Evaluate(net, baf.FilterSet(set), nil)
}

// AblationFilters compares AQF against the classic background-activity
// filter (and against no defense) under the three neuromorphic attacks,
// including the Corner attack from DVS-Attacks that the paper does not
// evaluate.
func AblationFilters(o Options) Result {
	f := runGestureFixture(o)
	ax, _ := f.d.Approximate(f.acc, 0.01, quant.FP32)
	advCorner := f.advCorner

	aqf := defense.DefaultAQFParams(0.015)
	baf := defense.NewBackgroundActivityFilter()

	tbl := eval.Table{
		Title:   "Ablation — event filters under neuromorphic attacks (level 0.01)",
		Headers: []string{"Attack", "Undefended[%]", "BAF[%]", "AQF[%]"},
	}
	metrics := map[string]float64{"clean": f.d.Evaluate(ax, f.test, nil)}
	for _, c := range []struct {
		name string
		adv  func() float64
		baf  func() float64
		aqf  func() float64
	}{
		{"Sparse",
			func() float64 { return f.d.Evaluate(ax, f.advSparse, nil) },
			func() float64 { return evalFiltered(f, ax, f.advSparse, baf) },
			func() float64 { return f.d.Evaluate(ax, f.advSparse, &aqf) }},
		{"Frame",
			func() float64 { return f.d.Evaluate(ax, f.advFrame, nil) },
			func() float64 { return evalFiltered(f, ax, f.advFrame, baf) },
			func() float64 { return f.d.Evaluate(ax, f.advFrame, &aqf) }},
		{"Corner",
			func() float64 { return f.d.Evaluate(ax, advCorner, nil) },
			func() float64 { return evalFiltered(f, ax, advCorner, baf) },
			func() float64 { return f.d.Evaluate(ax, advCorner, &aqf) }},
	} {
		u, bv, av := c.adv(), c.baf(), c.aqf()
		tbl.Rows = append(tbl.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f", 100*u),
			fmt.Sprintf("%.1f", 100*bv),
			fmt.Sprintf("%.1f", 100*av),
		})
		metrics[c.name+"_none"] = u
		metrics[c.name+"_baf"] = bv
		metrics[c.name+"_aqf"] = av
	}
	return Result{
		ID: "ablation-filters", Title: "AQF vs background-activity filter",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Extension: BAF is the pre-AQF denoising baseline (Delbruck); Corner is DVS-Attacks' third attack.",
	}
}
