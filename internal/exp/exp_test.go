package exp

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests assert the paper's *relationships* (who wins, what
// recovers, what collapses) at Tiny scale; absolute values are noisy at
// this size and are not asserted tightly. EXPERIMENTS.md records the
// measured numbers at the default scale.

var testOpts = Options{Scale: Tiny, Seed: 7}

func TestFig1Relations(t *testing.T) {
	r := Fig1(testOpts)
	m := r.Metrics
	if m["clean_accsnn"] < 0.6 {
		t.Fatalf("AccSNN clean accuracy %.2f too low", m["clean_accsnn"])
	}
	if m["axsnn0.1_eps0"] >= m["clean_accsnn"] {
		t.Fatalf("AxSNN(0.1) clean %.2f not below AccSNN %.2f", m["axsnn0.1_eps0"], m["clean_accsnn"])
	}
	// Attack must hurt the AxSNN at least as much as the AccSNN.
	if m["axsnn_loss_eps1.0"] < m["accsnn_loss_eps1.0"]-0.1 {
		t.Fatalf("AxSNN loss %.2f vs AccSNN loss %.2f: approximation did not increase vulnerability",
			m["axsnn_loss_eps1.0"], m["accsnn_loss_eps1.0"])
	}
	if !strings.Contains(r.Text, "eps") || r.CSV["curves"] == "" {
		t.Fatal("artifact text/CSV missing")
	}
}

func TestFig2LevelOrdering(t *testing.T) {
	r := Fig2(testOpts)
	m := r.Metrics
	// Clean accuracy must be monotone non-increasing in the
	// approximation level (allowing small evaluation noise).
	const slack = 0.07
	if m["Ax(0.001)_eps0"] > m["AccSNN_eps0"]+slack ||
		m["Ax(0.01)_eps0"] > m["Ax(0.001)_eps0"]+slack ||
		m["Ax(0.1)_eps0"] > m["Ax(0.01)_eps0"]+slack ||
		m["Ax(1)_eps0"] > m["Ax(0.1)_eps0"]+slack {
		t.Fatalf("clean accuracy not ordered by level: %+v", m)
	}
	// Level 1 collapses to chance.
	if m["Ax(1)_eps0"] > 0.25 {
		t.Fatalf("Ax(1) clean accuracy %.2f, want ≈0.1", m["Ax(1)_eps0"])
	}
	// ε=1.5 collapses everything.
	if m["AccSNN_eps1.5"] > 0.3 {
		t.Fatalf("AccSNN at ε=1.5 is %.2f, want collapse", m["AccSNN_eps1.5"])
	}
}

func TestFig3BIMBehaves(t *testing.T) {
	r := Fig3(testOpts)
	m := r.Metrics
	if m["AccSNN_eps0"] < 0.6 {
		t.Fatalf("clean accuracy %.2f too low", m["AccSNN_eps0"])
	}
	if m["AccSNN_eps0.9"] >= m["AccSNN_eps0"] {
		t.Fatal("BIM at ε=0.9 did not reduce accuracy")
	}
}

func TestFig4GridComplete(t *testing.T) {
	r := Fig4(testOpts)
	if r.Metrics["pgd_mean"] <= 0.05 || r.Metrics["pgd_mean"] >= 1 {
		t.Fatalf("pgd grid mean %v implausible", r.Metrics["pgd_mean"])
	}
	if r.Metrics["bim_best"] < 0.4 {
		t.Fatalf("no robust cells under BIM (best %.2f); Table I would be empty", r.Metrics["bim_best"])
	}
	if !strings.Contains(r.Text, "T\\Vth") {
		t.Fatal("grid text missing")
	}
	if r.CSV["pgd"] == "" || r.CSV["bim"] == "" {
		t.Fatal("grid CSVs missing")
	}
}

func TestFig5And6PrecisionScales(t *testing.T) {
	r5 := Fig5(testOpts)
	r6 := Fig6(testOpts)
	// Reduced precision must stay in the same ballpark as FP32 (the
	// paper's point: it does not destroy accuracy and often helps).
	r4 := Fig4(testOpts)
	for _, pair := range []struct {
		name string
		got  float64
	}{
		{"fig5 pgd", r5.Metrics["pgd_mean"]},
		{"fig6 pgd", r6.Metrics["pgd_mean"]},
	} {
		if pair.got < r4.Metrics["pgd_mean"]-0.25 {
			t.Fatalf("%s mean %.2f collapsed vs fp32 %.2f", pair.name, pair.got, r4.Metrics["pgd_mean"])
		}
	}
}

func TestFig7aCleanGrid(t *testing.T) {
	r := Fig7a(testOpts)
	if r.Metrics["mean"] < 0.5 {
		t.Fatalf("clean grid mean %.2f too low", r.Metrics["mean"])
	}
	if r.Metrics["best"] < 0.75 {
		t.Fatalf("best clean cell %.2f too low", r.Metrics["best"])
	}
}

func TestFig7bAttackCollapse(t *testing.T) {
	r := Fig7b(testOpts)
	m := r.Metrics
	if m["accsnn_clean"] < 0.6 {
		t.Fatalf("gesture clean accuracy %.2f too low", m["accsnn_clean"])
	}
	if m["accsnn_sparse"] > m["accsnn_clean"]-0.3 {
		t.Fatalf("sparse attack too weak: %.2f vs clean %.2f", m["accsnn_sparse"], m["accsnn_clean"])
	}
	if m["accsnn_frame"] > m["accsnn_clean"]-0.3 {
		t.Fatalf("frame attack too weak: %.2f vs clean %.2f", m["accsnn_frame"], m["accsnn_clean"])
	}
	if m["axsnn_sparse"] > m["axsnn_clean"]-0.3 {
		t.Fatalf("sparse attack too weak on AxSNN: %.2f vs %.2f", m["axsnn_sparse"], m["axsnn_clean"])
	}
}

func TestTable2AQFRecovers(t *testing.T) {
	fig := Fig7b(testOpts)
	r := Table2(testOpts)
	// Best AQF row per attack must recover well above the undefended
	// attacked accuracy.
	bestSparse, bestFrame := 0.0, 0.0
	for k, v := range r.Metrics {
		if strings.HasPrefix(k, "Spars") && v > bestSparse {
			bestSparse = v
		}
		if strings.HasPrefix(k, "Frame") && v > bestFrame {
			bestFrame = v
		}
	}
	if bestSparse < fig.Metrics["accsnn_sparse"]+0.3 {
		t.Fatalf("AQF sparse recovery %.2f vs undefended %.2f", bestSparse, fig.Metrics["accsnn_sparse"])
	}
	if bestFrame < fig.Metrics["accsnn_frame"]+0.3 {
		t.Fatalf("AQF frame recovery %.2f vs undefended %.2f", bestFrame, fig.Metrics["accsnn_frame"])
	}
	// Recovery approaches the clean baseline within 25 points.
	if bestFrame < r.Metrics["baseline"]-0.25 {
		t.Fatalf("frame recovery %.2f far from baseline %.2f", bestFrame, r.Metrics["baseline"])
	}
}

func TestTable1Search(t *testing.T) {
	if testing.Short() {
		t.Skip("Algorithm 1 search is the slowest experiment")
	}
	r := Table1(testOpts)
	if len(r.Metrics) == 0 {
		t.Fatal("no search results")
	}
	best := 0.0
	for _, v := range r.Metrics {
		if v > best {
			best = v
		}
	}
	if best < 0.4 {
		t.Fatalf("best searched robustness %.2f too low", best)
	}
	if !strings.Contains(r.Text, "PGD") || !strings.Contains(r.Text, "BIM") {
		t.Fatal("table text incomplete")
	}
}

func TestEnergyAblation(t *testing.T) {
	r := Energy(testOpts)
	m := r.Metrics
	if m["savings_level0"] != 1 {
		t.Fatalf("level 0 savings %.2f, want exactly 1", m["savings_level0"])
	}
	// Savings must grow with the approximation level.
	if !(m["savings_level0.001"] <= m["savings_level0.01"]+0.01 &&
		m["savings_level0.01"] <= m["savings_level0.1"]+0.01 &&
		m["savings_level0.1"] <= m["savings_level1"]+0.01) {
		t.Fatalf("savings not monotone: %+v", m)
	}
	// The paper's headline regime: meaningful savings at level 0.1.
	if m["savings_level0.1"] < 1.2 {
		t.Fatalf("savings at level 0.1 only %.2fx", m["savings_level0.1"])
	}
}

func TestRegistryAndRun(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) || len(ids) < 11 {
		t.Fatalf("registry incomplete: %v", ids)
	}
	if _, err := Run("nope", testOpts); err == nil {
		t.Fatal("expected error for unknown id")
	}
	r, err := Run("energy", testOpts)
	if err != nil || r.ID != "energy" {
		t.Fatalf("Run failed: %v", err)
	}
}

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"tiny", Tiny}, {"small", Small}, {"", Small}, {"paper", Paper}, {"full", Paper}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error")
	}
	if Tiny.String() != "tiny" || Small.String() != "small" || Paper.String() != "paper" {
		t.Fatal("Scale.String broken")
	}
}

func TestPrecisionTiers(t *testing.T) {
	r, err := Run("precision-tiers", testOpts)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Metrics
	if m["fp32_acc"] <= 0 || m["fp32_acc"] > 1 || m["int8_acc"] < 0 || m["int8_acc"] > 1 {
		t.Fatalf("accuracies out of range: %+v", m)
	}
	// The pinned INT8-vs-FP32 contract: per-channel 8-bit weight
	// quantization must not move the gesture fixture by more than 10
	// accuracy points in either direction (in practice the delta is 0
	// at Tiny scale — the quantization error is far below the decision
	// margins of the trained classifier).
	if d := m["delta"]; math.Abs(d) > 0.10 {
		t.Fatalf("int8 accuracy delta %.3f exceeds the pinned bound 0.10 (fp32 %.2f, int8 %.2f)",
			d, m["fp32_acc"], m["int8_acc"])
	}
	if !(m["sops_per_sample"] > 0) || !(m["energy_per_sample_j"] > 0) {
		t.Fatalf("energy accounting missing from metrics: %+v", m)
	}
	if r.Text == "" {
		t.Fatal("empty table text")
	}
}
