package exp

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/eval"
	"repro/internal/quant"
	"repro/internal/rng"
	"repro/internal/snn"
)

// gestureFixture is the shared product of the DVS experiments: a trained
// accurate gesture classifier at the paper's structural point (Vth=1.0,
// T=80, scaled), its AxSNN, and the two attacked test sets. Crafting
// follows the paper's §III literally: "the adversary uses an accurate
// classifier model for crafting the adversarial examples" — here the
// trained AccSNN itself; the examples then also hit the AxSNN, whose
// exact approximation the adversary does not know.
type gestureFixture struct {
	p         preset
	d         *core.GestureDesigner
	train     *dvs.Set
	test      *dvs.Set
	acc       *snn.Network
	cleanAcc  float64
	advSparse *dvs.Set
	advFrame  *dvs.Set
	advCorner *dvs.Set
}

func runGestureFixture(o Options) *gestureFixture {
	key := fmt.Sprintf("gesture/%s/%d", o.Scale, o.Seed)
	return cached(key, func() *gestureFixture {
		p := presetFor(o.Scale)
		train, test := gestureData(o, p)

		d := core.NewGestureDesigner(core.GestureConfig{
			Arch: func(cfg snn.Config, r *rng.RNG) *snn.Network {
				return snn.DVSNet(cfg, train.H, train.W, dvs.GestureClasses, true, r, rng.New(o.Seed+3))
			},
			Train: train,
			Test:  test,
			TrainOpts: func() snn.TrainOptions {
				return snn.TrainOptions{
					Epochs:    p.epochs + 4, // gestures need longer
					BatchSize: 8,
					Optimizer: snn.NewAdam(3e-3),
				}
			},
			CalibN: 8,
			Seed:   o.Seed + 900,
		})

		// Paper's structural point for DVS: Vth=1.0, T=80.
		acc := d.TrainAccurate(1.0, p.gestureSteps)
		f := &gestureFixture{p: p, d: d, train: train, test: test, acc: acc}
		f.cleanAcc = d.Evaluate(acc, test, nil)

		// All three attacked sets are crafted here (concurrently, via
		// the PerturbSet batch APIs) and cached with the fixture, so
		// every experiment sharing the fixture reuses them.
		sparse := attack.NewSparse()
		f.advSparse = d.CraftAdversarial(acc, sparse)
		// Border thickness 4 on the 32×32 sensor corresponds to the
		// paper's boundary flood on 128×128 (the attacked fraction of
		// the field scales with resolution).
		frame := attack.NewFrame()
		frame.Thickness = 4
		f.advFrame = d.CraftAdversarial(acc, frame)
		f.advCorner = d.CraftAdversarial(acc, attack.NewCorner())
		return f
	})
}

// Fig7b reproduces the DVS bar chart: AccSNN and AxSNN accuracy with no
// attack, under Sparse attack and under Frame attack.
func Fig7b(o Options) Result {
	f := runGestureFixture(o)
	ax, _ := f.d.Approximate(f.acc, 0.01, quant.FP32)

	bars := eval.BarGroup{
		Title:      "Fig. 7b — DVS128 Gesture, attacks on AccSNN vs AxSNN",
		Categories: []string{"AccSNN", "AxSNN(0.01)"},
		Series:     []string{"No Attack", "Sparse", "Frame"},
	}
	row := func(net *snn.Network) []float64 {
		return []float64{
			f.d.Evaluate(net, f.test, nil),
			f.d.Evaluate(net, f.advSparse, nil),
			f.d.Evaluate(net, f.advFrame, nil),
		}
	}
	accRow := row(f.acc)
	axRow := row(ax)
	bars.Values = [][]float64{accRow, axRow}

	return Result{
		ID: "fig7b", Title: "AccSNN and AxSNN under neuromorphic attacks (DVS gestures)",
		Text: eval.FormatBars(bars),
		Metrics: map[string]float64{
			"accsnn_clean":  accRow[0],
			"accsnn_sparse": accRow[1],
			"accsnn_frame":  accRow[2],
			"axsnn_clean":   axRow[0],
			"axsnn_sparse":  axRow[1],
			"axsnn_frame":   axRow[2],
		},
		Notes: "Paper: 92% clean collapsing to ≈12% (Sparse) and ≈10% (Frame) for both AccSNN and AxSNN.",
	}
}

// Table2 reproduces Table II: accuracy recovered by AQF-filtered
// precision-scaled AxSNNs under Sparse and Frame attacks, for the
// paper's (qt, a_th) pairs at (Vth, T) = (1.0, 80).
func Table2(o Options) Result {
	f := runGestureFixture(o)

	configs := []struct {
		qt    float64
		level float64
	}{{0.015, 0.1}, {0.01, 0.15}, {0.0, 0.001}}

	tbl := eval.Table{
		Title:   "Table II — recovered accuracy with AQF (DVS128 Gesture, Vth=1.0, T=80)",
		Headers: []string{"Attack", "(qt,ath)", "Ar[%]", "Al[%]"},
	}
	metrics := map[string]float64{"baseline": f.cleanAcc}
	for _, atkName := range []string{"Sparse Attack", "Frame Attack"} {
		adv := f.advSparse
		if atkName == "Frame Attack" {
			adv = f.advFrame
		}
		for _, c := range configs {
			ax, _ := f.d.Approximate(f.acc, c.level, quant.FP32)
			aqf := defense.DefaultAQFParams(c.qt)
			ar := f.d.Evaluate(ax, adv, &aqf)
			al := f.cleanAcc - ar
			tbl.Rows = append(tbl.Rows, []string{
				atkName,
				fmt.Sprintf("(%.3g, %g)", c.qt, c.level),
				fmt.Sprintf("%.1f", 100*ar),
				fmt.Sprintf("%.1f", 100*al),
			})
			metrics[fmt.Sprintf("%s_qt%g_ath%g", atkName[:5], c.qt, c.level)] = ar
		}
	}
	return Result{
		ID: "table2", Title: "AQF-based adversarial defense (Table II)",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Paper: Sparse (0.015,0.1)→Ar 90.01/Al 2.0, (0.01,0.15)→88.4/3.6, (0,0.001)→84.3/7.7; Frame (0.015,0.1)→91.1/1.0, (0.01,0.15)→89.9/2.1, (0,0.001)→88.2/3.8.",
	}
}
