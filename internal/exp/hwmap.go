package exp

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/eval"
	"repro/internal/hw"
	"repro/internal/quant"
	"repro/internal/snn"
)

// HWMapping maps the accurate and approximate networks onto a
// Loihi-class core mesh and reports the deployment footprint — the
// hardware-level view of the paper's energy-efficiency motivation.
func HWMapping(o Options) Result {
	p := presetFor(o.Scale)
	train, test := mnistData(o, p)
	d := designerFor(o, p, train, test)
	acc := d.TrainAccurate(0.25, p.scaledSteps(32))

	// Small cores so even the reduced networks span several of them.
	spec := hw.DefaultCoreSpec()
	spec.MaxNeurons = 64
	spec.MaxSynapses = 4096

	tbl := eval.Table{
		Title:   "Neuromorphic deployment — core mesh footprint vs approximation level",
		Headers: []string{"Level", "Cores", "Synapses", "Util[%]", "Energy/inf[nJ]", "Latency[µs]", "Acc[%]"},
	}
	metrics := map[string]float64{}
	calib := d.CalibrationFrames(acc)
	for _, level := range []float64{0, 0.01, 0.1, 0.3} {
		victim := acc
		if level > 0 {
			victim, _ = approx.Approximate(acc, approx.Params{Level: level, Scale: quant.FP32}, calib)
		}
		snn.Calibrate(victim, calib)
		place, err := hw.Map(victim, spec)
		if err != nil {
			tbl.Rows = append(tbl.Rows, []string{fmt.Sprintf("%g", level), "-", "-", "-", "-", "-", "-"})
			continue
		}
		rep := place.Analyze(victim.Cfg.Steps)
		accPct := d.EvaluateSet(victim, test)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%g", level),
			fmt.Sprintf("%d", rep.CoresUsed),
			fmt.Sprintf("%d", rep.SynapsesUsed),
			fmt.Sprintf("%.0f", 100*rep.MeanCoreUtilization),
			fmt.Sprintf("%.1f", rep.EnergyPerInferenceJ*1e9),
			fmt.Sprintf("%.1f", rep.LatencyPerInferenceS*1e6),
			fmt.Sprintf("%.0f", 100*accPct),
		})
		metrics[fmt.Sprintf("energy_nj_level%g", level)] = rep.EnergyPerInferenceJ * 1e9
		metrics[fmt.Sprintf("cores_level%g", level)] = float64(rep.CoresUsed)
		metrics[fmt.Sprintf("synapses_level%g", level)] = float64(rep.SynapsesUsed)
	}
	return Result{
		ID: "hw-mapping", Title: "Loihi-class deployment footprint",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Extension: hardware-level realization of the §I energy motivation (ref [1] targets Loihi).",
	}
}
