package exp

import "testing"

// TestStreamEvalAgreement pins the serving-path contract on the real
// fixture: the streaming pipeline must agree with the in-memory path on
// every test recording (bit-identical predictions), and therefore
// reproduce its accuracy exactly.
func TestStreamEvalAgreement(t *testing.T) {
	r := StreamEval(testOpts)
	m := r.Metrics
	if m["agreement"] != 1.0 {
		t.Fatalf("streaming agreed with the in-memory path on %.3f of recordings, want 1.0", m["agreement"])
	}
	if m["stream_acc"] != m["mem_acc"] {
		t.Fatalf("streaming accuracy %.3f != in-memory accuracy %.3f", m["stream_acc"], m["mem_acc"])
	}
	if m["windows"] == 0 {
		t.Fatal("vacuous: no windows streamed")
	}
	if r.Text == "" {
		t.Fatal("artifact text missing")
	}
}
