package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// JSON renders the result as indented JSON (text artifact, metrics and
// notes; CSV payloads are included verbatim). Non-finite metric values
// (e.g. the infinite energy savings of a fully pruned network) are
// clamped to ±1e15, since JSON has no Inf.
func (r Result) JSON() ([]byte, error) {
	clean := r
	clean.Metrics = make(map[string]float64, len(r.Metrics))
	for k, v := range r.Metrics {
		switch {
		case math.IsInf(v, 1) || v > 1e15:
			v = 1e15
		case math.IsInf(v, -1) || v < -1e15:
			v = -1e15
		case math.IsNaN(v):
			v = 0
		}
		clean.Metrics[k] = v
	}
	return json.MarshalIndent(clean, "", "  ")
}

// Runner is one experiment entry point.
type Runner func(Options) Result

// Registry maps experiment IDs (paper figure/table numbers) to runners.
var Registry = map[string]Runner{
	"fig1":   Fig1,
	"fig2":   Fig2,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"fig7a":  Fig7a,
	"fig7b":  Fig7b,
	"table1": Table1,
	"table2": Table2,
	"energy": Energy,

	// Extensions beyond the paper's artifacts (see DESIGN.md).
	"ablation-encoding": AblationEncoding,
	"ablation-aqf":      AblationAQF,
	"ablation-filters":  AblationFilters,
	"ablation-uap":      AblationUAP,
	"hw-mapping":        HWMapping,
	"stream-eval":       StreamEval,
	"precision-tiers":   PrecisionTiers,
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, o Options) (Result, error) {
	r, ok := Registry[id]
	if !ok {
		return Result{}, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r(o), nil
}

// RunAll executes every experiment in a stable order.
func RunAll(o Options) []Result {
	var out []Result
	for _, id := range IDs() {
		out = append(out, Registry[id](o))
	}
	return out
}
