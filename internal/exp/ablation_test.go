package exp

import (
	"strings"
	"testing"
)

func TestAblationEncoding(t *testing.T) {
	r := AblationEncoding(testOpts)
	for _, enc := range []string{"rate", "direct", "ttfs"} {
		if _, ok := r.Metrics[enc+"_clean"]; !ok {
			t.Fatalf("missing %s metrics", enc)
		}
		if r.Metrics[enc+"_clean"] < 0.5 {
			t.Fatalf("%s encoding failed to train: %.2f", enc, r.Metrics[enc+"_clean"])
		}
		if !strings.Contains(r.Text, enc) {
			t.Fatalf("table missing %s row", enc)
		}
	}
}

func TestAblationAQF(t *testing.T) {
	r := AblationAQF(testOpts)
	if len(r.Metrics) < 10 {
		t.Fatalf("expected a full sweep, got %d metrics", len(r.Metrics))
	}
	// A larger T2 window admits more uncorrelated events: adversarial
	// recovery at T2=100 must not beat T2=25 by a wide margin for the
	// same support (sanity of the knob's direction).
	if r.Metrics["s2_t100_adv"] > r.Metrics["s2_t25_adv"]+0.15 {
		t.Fatalf("T2 sensitivity inverted: t100=%.2f t25=%.2f",
			r.Metrics["s2_t100_adv"], r.Metrics["s2_t25_adv"])
	}
	// Clean retention must stay reasonable at the paper's constants.
	if r.Metrics["s2_t50_clean"] < r.Metrics["baseline"]-0.35 {
		t.Fatalf("AQF at paper constants destroys clean accuracy: %.2f vs %.2f",
			r.Metrics["s2_t50_clean"], r.Metrics["baseline"])
	}
}

func TestAblationUAP(t *testing.T) {
	r := AblationUAP(testOpts)
	if r.Metrics["clean"] < 0.6 {
		t.Fatalf("clean accuracy %.2f too low", r.Metrics["clean"])
	}
	// The universal perturbation must transfer: larger budgets hurt more
	// and the approximate model must not be noticeably safer.
	if r.Metrics["accsnn_eps0.5"] >= r.Metrics["accsnn_eps0.1"] {
		t.Fatalf("UAP budget not monotone: %.2f vs %.2f",
			r.Metrics["accsnn_eps0.5"], r.Metrics["accsnn_eps0.1"])
	}
	if r.Metrics["accsnn_eps0.5"] >= r.Metrics["clean"] {
		t.Fatal("UAP had no effect at eps 0.5")
	}
	if r.Metrics["ax0.1_eps0.5"] > r.Metrics["accsnn_eps0.5"]+0.15 {
		t.Fatalf("AxSNN(0.1) safer than AccSNN under UAP: %.2f vs %.2f",
			r.Metrics["ax0.1_eps0.5"], r.Metrics["accsnn_eps0.5"])
	}
}

func TestHWMapping(t *testing.T) {
	r := HWMapping(testOpts)
	if len(r.Metrics) == 0 {
		t.Fatal("no metrics")
	}
	// Footprint must shrink monotonically with the approximation level.
	if r.Metrics["synapses_level0.3"] >= r.Metrics["synapses_level0"] {
		t.Fatalf("synapse footprint did not shrink: %v vs %v",
			r.Metrics["synapses_level0.3"], r.Metrics["synapses_level0"])
	}
	if r.Metrics["energy_nj_level0.3"] >= r.Metrics["energy_nj_level0"] {
		t.Fatalf("energy did not shrink: %v vs %v",
			r.Metrics["energy_nj_level0.3"], r.Metrics["energy_nj_level0"])
	}
	if r.Metrics["cores_level0.3"] > r.Metrics["cores_level0"] {
		t.Fatal("core count grew under pruning")
	}
}

func TestAblationFilters(t *testing.T) {
	r := AblationFilters(testOpts)
	for _, atk := range []string{"Sparse", "Frame", "Corner"} {
		none := r.Metrics[atk+"_none"]
		aqf := r.Metrics[atk+"_aqf"]
		baf := r.Metrics[atk+"_baf"]
		if aqf < none {
			t.Fatalf("%s: AQF made things worse (%.2f -> %.2f)", atk, none, aqf)
		}
		// AQF must at least match the baseline filter on every attack
		// and clearly beat it on Frame (whose events are
		// self-supporting under plain neighbourhood refresh).
		if aqf < baf-0.05 {
			t.Fatalf("%s: AQF %.2f below baseline filter %.2f", atk, aqf, baf)
		}
	}
	if r.Metrics["Frame_aqf"] < r.Metrics["Frame_baf"]+0.2 {
		t.Fatalf("AQF must dominate BAF under Frame: %.2f vs %.2f",
			r.Metrics["Frame_aqf"], r.Metrics["Frame_baf"])
	}
}
