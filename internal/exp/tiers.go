package exp

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/eval"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// PrecisionTiers pins the serving-tier contract on the gesture fixture:
// the quantized INT8 inference path (per-channel int8 weight panels
// with int32 accumulation — snn.TierINT8, what a serve session requests
// with modeInt8) must track the exact FP32 classifier within a small
// accuracy delta, and the energy model prices the synaptic work behind
// the per-session SOP accounting the serve protocol reports. The delta
// bound itself is pinned by the test suite.
func PrecisionTiers(o Options) Result {
	f := runGestureFixture(o)

	// INT8 runs on a weight-sharing clone: the panels quantize the
	// masked effective weights cold, the clone's tier flips, and the
	// fixture's FP32 network stays untouched for the other experiments.
	q := f.acc.CloneArchitecture()
	if err := q.BuildInt8Panels(); err != nil {
		panic(fmt.Sprintf("exp: building int8 panels: %v", err))
	}
	if err := q.SetTier(snn.TierINT8); err != nil {
		panic(fmt.Sprintf("exp: selecting the int8 tier: %v", err))
	}
	int8Acc := f.d.Evaluate(q, f.test, nil)
	delta := f.cleanAcc - int8Acc

	// Price the synaptic work the way the serve tier does. SOP counts
	// depend on geometry, masks and spiking activity — not on arithmetic
	// precision — so one measurement covers both tiers.
	workload := make([][]*tensor.Tensor, 0, 8)
	for i := range f.test.Samples {
		if i == 8 {
			break
		}
		workload = append(workload, f.test.Samples[i].Stream.Voxelize(f.acc.Cfg.Steps))
	}
	e := approx.MeasureEnergy(f.acc, workload)
	perSample := 0.0
	if e.Samples > 0 {
		perSample = e.SOPs / float64(e.Samples)
	}

	tbl := eval.Table{
		Title:   "Precision tiers — exact FP32 vs quantized INT8 (DVS128 Gesture)",
		Headers: []string{"Tier", "Clean acc[%]", "SOPs/sample", "Energy/sample [J]"},
	}
	for _, row := range []struct {
		tier string
		acc  float64
	}{{snn.TierFP32.String(), f.cleanAcc}, {snn.TierINT8.String(), int8Acc}} {
		tbl.Rows = append(tbl.Rows, []string{
			row.tier,
			fmt.Sprintf("%.1f", 100*row.acc),
			fmt.Sprintf("%.4g", perSample),
			fmt.Sprintf("%.3g", perSample*e.EnergyPerSOpJ),
		})
	}
	return Result{
		ID: "precision-tiers", Title: "Quantized INT8 serving tier vs exact FP32",
		Text: eval.FormatTable(tbl),
		Metrics: map[string]float64{
			"fp32_acc":            f.cleanAcc,
			"int8_acc":            int8Acc,
			"delta":               delta,
			"sops_per_sample":     perSample,
			"energy_per_sample_j": perSample * e.EnergyPerSOpJ,
		},
		Notes: "Weight quantization is per output channel, 8-bit symmetric, int32 accumulation; activations stay FP32. SOP counts are precision-independent — the same accounting backs the serve tier's result/done frames.",
	}
}
