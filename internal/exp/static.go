package exp

import (
	"fmt"
	"sync"

	"repro/internal/approx"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/encoding"
	"repro/internal/eval"
	"repro/internal/quant"
	"repro/internal/snn"
	"repro/internal/tensor"
)

// tuneAttack applies the experiment-level attack calibration. The
// paper's accuracy-vs-ε series stays high until ε≈1.0 and collapses at
// ε=1.5, which is inconsistent with sign-PGD saturating the l∞ ball at
// every ε; we therefore map the paper's ε axis to an effective step
// budget of ε/5 per crafting run below the cliff, and let ε>1.2 saturate
// the ball (reproducing the published cliff). The mapping is recorded in
// EXPERIMENTS.md; all comparisons (AccSNN vs AxSNN, across levels,
// scales and structural points) are unaffected by this monotone
// recalibration of the attack axis.
func tuneAttack(a *attack.Gradient, e float64, iters int) *attack.Gradient {
	a.Steps = iters
	a.Encoder = encoding.Rate{}
	if e <= 1.2 {
		a.Alpha = e / (5 * float64(iters))
	}
	return a
}

// designerFor builds the static-task Designer for a preset.
func designerFor(o Options, p preset, train, test *dataset.Set) *core.Designer {
	return designerWith(o, p, train, test, encoding.Rate{})
}

// designerWith is designerFor with an explicit spike encoder.
func designerWith(o Options, p preset, train, test *dataset.Set, enc encoding.Encoder) *core.Designer {
	return core.NewDesigner(core.Config{
		Arch:      buildStatic(o, p),
		Train:     train,
		Test:      test,
		Encoder:   enc,
		TrainOpts: trainOpts(p),
		CalibN:    12,
		Seed:      o.Seed,
	})
}

// curveExperiment runs the Figs. 1-3 shape: accuracy-vs-ε curves for a
// set of approximation levels under one attack, at the paper's fixed
// structural point Vth=0.25, T=32.
func curveExperiment(o Options, mk func(float64) *attack.Gradient, levels []float64) ([]eval.Curve, float64) {
	p := presetFor(o.Scale)
	train, test := mnistData(o, p)
	d := designerFor(o, p, train, test)

	vth := float32(0.25)
	steps := p.scaledSteps(32)
	acc := d.TrainAccurate(vth, steps)
	sur := d.TrainSurrogate(vth, steps)
	cleanAcc := d.EvaluateSet(acc, test)

	curves := make([]eval.Curve, 0, len(levels))
	for _, level := range levels {
		victim := acc
		if level > 0 {
			victim, _ = d.Approximate(acc, level, quant.FP32)
		}
		name := "AccSNN"
		if level > 0 {
			name = fmt.Sprintf("Ax(%g)", level)
		}
		accs := d.RobustnessCurve(victim, sur, func(e float64) *attack.Gradient {
			return tuneAttack(mk(e), e, p.attackIters)
		}, EpsAxis)
		curves = append(curves, eval.Curve{Name: name, Eps: EpsAxis, Acc: accs})
	}
	return curves, cleanAcc
}

// Fig1 reproduces the motivational study: AccSNN vs AxSNN (approximation
// level 0.1) under PGD across perturbation budgets.
func Fig1(o Options) Result {
	curves, clean := curveExperiment(o, attack.PGD, []float64{0, 0.1})
	text := eval.FormatCurves("Fig. 1 — AccSNN vs AxSNN(0.1) under PGD", curves)
	m := map[string]float64{
		"clean_accsnn":       clean,
		"accsnn_eps1.0":      curves[0].Acc[indexOf(EpsAxis, 1.0)],
		"axsnn0.1_eps0":      curves[1].Acc[0],
		"axsnn0.1_eps1.0":    curves[1].Acc[indexOf(EpsAxis, 1.0)],
		"gap_eps0.5":         curves[0].Acc[indexOf(EpsAxis, 0.5)] - curves[1].Acc[indexOf(EpsAxis, 0.5)],
		"accsnn_loss_eps1.0": clean - curves[0].Acc[indexOf(EpsAxis, 1.0)],
		"axsnn_loss_eps1.0":  clean - curves[1].Acc[indexOf(EpsAxis, 1.0)],
	}
	return Result{
		ID: "fig1", Title: "Robustness comparison of AccSNN and AxSNN under PGD",
		Text:    text,
		CSV:     map[string]string{"curves": eval.CurvesCSV(curves)},
		Metrics: m,
		Notes:   "Paper: AccSNN 97%→88% over ε 0→1.0; AxSNN(0.1) 52%→≈25%; both ≈10% at ε=1.5.",
	}
}

// Fig2 reproduces the PGD robustness analysis across approximation
// levels {0, 0.001, 0.01, 0.1, 1}.
func Fig2(o Options) Result {
	curves, _ := curveExperiment(o, attack.PGD, approx.Levels)
	return Result{
		ID: "fig2", Title: "AxSNN MNIST classifier under PGD across approximation levels",
		Text:    eval.FormatCurves("Fig. 2 — PGD, approximation levels 0/0.001/0.01/0.1/1", curves),
		CSV:     map[string]string{"curves": eval.CurvesCSV(curves)},
		Metrics: curveMetrics(curves),
		Notes:   "Paper labels A-D: Ax(0.01) 93%→77% over ε 0→0.9 while AccSNN 96%→89%.",
	}
}

// Fig3 is Fig2 under BIM.
func Fig3(o Options) Result {
	curves, _ := curveExperiment(o, attack.BIM, approx.Levels)
	return Result{
		ID: "fig3", Title: "AxSNN MNIST classifier under BIM across approximation levels",
		Text:    eval.FormatCurves("Fig. 3 — BIM, approximation levels 0/0.001/0.01/0.1/1", curves),
		CSV:     map[string]string{"curves": eval.CurvesCSV(curves)},
		Metrics: curveMetrics(curves),
		Notes:   "Paper labels E-H: Ax(0.01) 93%→71% over ε 0→0.9 while AccSNN 96%→82%.",
	}
}

func curveMetrics(curves []eval.Curve) map[string]float64 {
	m := map[string]float64{}
	for _, c := range curves {
		m[c.Name+"_eps0"] = c.Acc[0]
		m[c.Name+"_eps0.9"] = c.Acc[indexOf(EpsAxis, 0.9)]
		m[c.Name+"_eps1.5"] = c.Acc[indexOf(EpsAxis, 1.5)]
	}
	return m
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// sweepOut is the shared product of the structural sweep: one trained
// victim per (T, Vth) cell plus transfer-attack test sets, evaluated
// lazily per precision scale.
type sweepOut struct {
	p       preset
	train   *dataset.Set
	test    *dataset.Set
	victims [][]*snn.Network // [ti][vi]
	clean   [][]float64      // AccSNN clean accuracy per cell
	advPGD  *dataset.Set
	advBIM  *dataset.Set
	d       *core.Designer
}

// runSweep trains the full structural grid once per (scale, seed) and
// caches it; Figs. 4, 5, 6 and 7a all read from the same sweep, exactly
// as the paper evaluates one trained model per cell under several
// precision scales.
func runSweep(o Options) *sweepOut {
	key := fmt.Sprintf("sweep/%s/%d", o.Scale, o.Seed)
	return cached(key, func() *sweepOut {
		p := presetFor(o.Scale)
		train, test := mnistData(o, p)
		d := designerFor(o, p, train, test)

		s := &sweepOut{p: p, train: train, test: test, d: d}

		// The adversary does not know the victim's structural
		// parameters (§III): one surrogate at a canonical mid-grid
		// point crafts both attack sets, with ε=1.0 as in Figs. 4-6.
		sur := d.TrainSurrogate(1.0, p.scaledSteps(48))
		mkAdv := func(mk func(float64) *attack.Gradient) *dataset.Set {
			a := tuneAttack(mk(1.0), 1.0, p.attackIters)
			return d.CraftAdversarial(sur, a, o.Seed+21)
		}
		s.advPGD = mkAdv(attack.PGD)
		s.advBIM = mkAdv(attack.BIM)

		s.victims = make([][]*snn.Network, len(p.stepAxis))
		s.clean = make([][]float64, len(p.stepAxis))
		workers := o.Workers
		if workers <= 0 {
			workers = tensor.Workers()
		}
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for ti := range p.stepAxis {
			s.victims[ti] = make([]*snn.Network, len(p.vthAxis))
			s.clean[ti] = make([]float64, len(p.vthAxis))
			for vi := range p.vthAxis {
				wg.Add(1)
				go func(ti, vi int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					vth := p.vthAxis[vi]
					steps := p.scaledSteps(p.stepAxis[ti])
					net := d.TrainAccurate(vth, steps)
					s.victims[ti][vi] = net
					s.clean[ti][vi] = d.EvaluateSet(net, test)
				}(ti, vi)
			}
		}
		wg.Wait()
		return s
	})
}

// gridFor evaluates the sweep's victims at one (level, scale, attack).
func gridFor(o Options, s *sweepOut, level float64, qs quant.Scale, adv *dataset.Set, title string) eval.Grid {
	p := s.p
	g := eval.Grid{Title: title, Steps: p.stepAxis, VThs: p.vthAxis}
	g.Acc = make([][]float64, len(p.stepAxis))
	workers := o.Workers
	if workers <= 0 {
		workers = tensor.Workers()
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ti := range p.stepAxis {
		g.Acc[ti] = make([]float64, len(p.vthAxis))
		for vi := range p.vthAxis {
			wg.Add(1)
			go func(ti, vi int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				victim := s.victims[ti][vi]
				if level > 0 || qs != quant.FP32 {
					victim, _ = s.d.Approximate(victim, level, qs)
				}
				g.Acc[ti][vi] = s.d.EvaluateSet(victim, adv)
			}(ti, vi)
		}
	}
	wg.Wait()
	return g
}

// figGrid implements Figs. 4-6: the (T×Vth) heatmaps of AxSNN
// (approximation level 0.01) at one precision scale under PGD and BIM at
// ε=1.
func figGrid(o Options, id string, qs quant.Scale) Result {
	s := runSweep(o)
	pgd := gridFor(o, s, 0.01, qs, s.advPGD, fmt.Sprintf("%s(a) PGD ε=1, level 0.01, %s", id, qs))
	bim := gridFor(o, s, 0.01, qs, s.advBIM, fmt.Sprintf("%s(b) BIM ε=1, level 0.01, %s", id, qs))
	m := map[string]float64{
		"pgd_mean": gridMean(pgd),
		"bim_mean": gridMean(bim),
		"pgd_best": gridMax(pgd),
		"bim_best": gridMax(bim),
	}
	return Result{
		ID:    id,
		Title: fmt.Sprintf("Accuracy of AxSNN (level 0.01, %s) under attack (ε=1)", qs),
		Text:  eval.FormatGrid(pgd) + "\n" + eval.FormatGrid(bim),
		CSV: map[string]string{
			"pgd": eval.GridCSV(pgd),
			"bim": eval.GridCSV(bim),
		},
		Metrics: m,
		Notes:   "Paper: accuracy varies strongly over the grid and degrades at Vth>1.75; reduced precision (FP16/INT8) recovers a few points over FP32 at the good cells.",
	}
}

// Fig4 is the FP32 heatmap pair.
func Fig4(o Options) Result { return figGrid(o, "fig4", quant.FP32) }

// Fig5 is the FP16 heatmap pair.
func Fig5(o Options) Result { return figGrid(o, "fig5", quant.FP16) }

// Fig6 is the INT8 heatmap pair.
func Fig6(o Options) Result { return figGrid(o, "fig6", quant.INT8) }

// Fig7a is the clean AccSNN heatmap over the structural grid.
func Fig7a(o Options) Result {
	s := runSweep(o)
	g := eval.Grid{Title: "Fig. 7a — AccSNN clean accuracy (ε=0)", Steps: s.p.stepAxis, VThs: s.p.vthAxis, Acc: s.clean}
	return Result{
		ID: "fig7a", Title: "Accuracy of AccSNN without attack (MNIST)",
		Text: eval.FormatGrid(g),
		CSV:  map[string]string{"clean": eval.GridCSV(g)},
		Metrics: map[string]float64{
			"mean": gridMean(g),
			"best": gridMax(g),
		},
		Notes: "Paper: high accuracy (94-99%) across most of the grid, collapsing at very high Vth.",
	}
}

func gridMean(g eval.Grid) float64 {
	n, s := 0, 0.0
	for _, row := range g.Acc {
		for _, v := range row {
			s += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

func gridMax(g eval.Grid) float64 {
	m := 0.0
	for _, row := range g.Acc {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Table1 reproduces Table I: Algorithm 1's best (scale, level) per
// structural point under PGD and BIM at ε=1.
func Table1(o Options) Result {
	p := presetFor(o.Scale)
	train, test := mnistData(o, p)

	points := []struct {
		vth float32
		t   int
	}{{0.25, 32}, {0.75, 32}, {1.0, 48}}
	levels := []float64{0.009, 0.01, 0.011, 0.0125, 0.013}

	tbl := eval.Table{
		Title:   "Table I — best robustness settings (Algorithm 1)",
		Headers: []string{"(Vth,T)", "Attack", "(q,ath)", "Accuracy[%]"},
	}
	metrics := map[string]float64{}
	for _, pt := range points {
		for _, atkName := range []string{"PGD", "BIM"} {
			mk := attack.PGD
			if atkName == "BIM" {
				mk = attack.BIM
			}
			res := defense.PrecisionScalingSearch(defense.SearchConfig{
				Space: defense.SearchSpace{
					VThs:   []float32{pt.vth},
					Steps:  []int{p.scaledSteps(pt.t)},
					Scales: quant.Scales,
					Levels: levels,
				},
				AttackFor: func(e float64) *attack.Gradient {
					return tuneAttack(mk(e), e, p.attackIters)
				},
				Eps:       1.0,
				Q:         0.5,
				Train:     train,
				Test:      test,
				BuildNet:  buildStatic(o, p),
				TrainOpts: trainOpts(p),
				Encoder:   encoding.Rate{},
				CalibN:    12,
				Seed:      o.Seed + uint64(pt.t)*3 + uint64(pt.vth*100),
				Workers:   o.Workers,
			})
			if res.Best == nil {
				tbl.Rows = append(tbl.Rows, []string{
					fmt.Sprintf("(%.2f,%d)", pt.vth, pt.t), atkName, "-", "gate failed"})
				continue
			}
			b := res.Best
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("(%.2f,%d)", pt.vth, pt.t),
				atkName,
				fmt.Sprintf("(%s, %g)", b.Scale, b.Level),
				fmt.Sprintf("%.0f", 100*b.AdvAcc),
			})
			metrics[fmt.Sprintf("%s_vth%.2f_t%d", atkName, pt.vth, pt.t)] = b.AdvAcc
		}
	}
	return Result{
		ID: "table1", Title: "Best robustness settings for precision-scaled AxSNN (MNIST)",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Paper's rows: (0.25,32) PGD→(FP32,0.01)=88, BIM→(INT8,0.009)=80; (0.75,32) PGD→(INT8,0.011)=92, BIM→(FP16,0.013)=91; (1.0,48) PGD→(FP32,0.01)=97, BIM→(INT8,0.0125)=96.",
	}
}

// Energy quantifies the §I claim that AxSNNs are up to 4X more
// energy-efficient, via the synaptic-operation model.
func Energy(o Options) Result {
	p := presetFor(o.Scale)
	train, test := mnistData(o, p)
	d := designerFor(o, p, train, test)
	acc := d.TrainAccurate(0.25, p.scaledSteps(32))

	tbl := eval.Table{
		Title:   "Energy model — synaptic operations vs approximation level",
		Headers: []string{"Level", "Pruned[%]", "SOP savings", "Clean acc[%]"},
	}
	metrics := map[string]float64{}
	for _, level := range approx.Levels {
		victim := acc
		var pruned float64
		if level > 0 {
			var rep approx.Report
			victim, rep = d.Approximate(acc, level, quant.FP32)
			pruned = rep.TotalPrunedFraction()
		}
		e := d.Energy(victim)
		ca := d.EvaluateSet(victim, test)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%g", level),
			fmt.Sprintf("%.1f", 100*pruned),
			fmt.Sprintf("%.2fx", e.Savings()),
			fmt.Sprintf("%.0f", 100*ca),
		})
		metrics[fmt.Sprintf("savings_level%g", level)] = e.Savings()
		metrics[fmt.Sprintf("acc_level%g", level)] = ca
	}
	return Result{
		ID: "energy", Title: "Energy-efficiency ablation (§I \"up to 4X\")",
		Text:    eval.FormatTable(tbl),
		Metrics: metrics,
		Notes:   "Sen et al. [2] report ≈4X at iso-accuracy-loss; the SOP model reproduces the savings/accuracy trade-off curve.",
	}
}
