package eval

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark-output parsing: CI's bench-smoke step pipes `go test -bench`
// output through this to emit a machine-readable BENCH_<pr>.json, so
// the performance trajectory of the hot paths (inference arena, event
// attacks, GEMM) is tracked artifact-to-artifact instead of scraped
// from logs.

// BenchResult is one parsed benchmark line. Metrics holds every
// value/unit pair the line reported (ns/op, B/op, allocs/op and any
// custom ReportMetric units like ns/stream or accuracy percentages).
type BenchResult struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// ParseBench reads `go test -bench` output and returns the benchmark
// lines in order, ignoring everything else (headers, PASS/ok trailers).
func ParseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		name := fields[0]
		procs := 0
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				name, procs = name[:i], p
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // a test line that happens to start with "Benchmark"
		}
		b := BenchResult{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
		// The remainder alternates value, unit.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// BenchJSON renders parsed benchmark results as indented JSON.
func BenchJSON(results []BenchResult) ([]byte, error) {
	return json.MarshalIndent(results, "", "  ")
}

// CompareBench gates cur against prev: every benchmark matching re
// that appears in both runs must hold cur ns/op <= prev ns/op ×
// maxRatio (1.2 = a 20% regression budget). Benchmarks new in cur, or
// gone from it, are skipped — the gate compares trajectories, it does
// not freeze the benchmark set — and a run with no comparable pair
// passes (the first artifact has nothing to regress against). It
// returns an error naming every offender with both timings.
func CompareBench(prev, cur []BenchResult, re *regexp.Regexp, maxRatio float64) error {
	if maxRatio <= 0 {
		return fmt.Errorf("eval: non-positive regression ratio %g", maxRatio)
	}
	prevNs := make(map[string]float64, len(prev))
	for _, r := range prev {
		if ns, ok := r.Metrics["ns/op"]; ok {
			prevNs[r.Name] = ns
		}
	}
	var bad []string
	for _, r := range cur {
		if !re.MatchString(r.Name) {
			continue
		}
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		base, ok := prevNs[r.Name]
		if !ok || base <= 0 {
			continue
		}
		if ns > base*maxRatio {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs %.0f previously (%.2fx > %.2fx budget)",
				r.Name, ns, base, ns/base, maxRatio))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench regression gate failed: %s", strings.Join(bad, "; "))
	}
	return nil
}

// CheckZeroAllocs verifies that every benchmark whose name matches re
// reported allocs/op == 0 — the CI gate keeping the arena'd hot paths
// (inference Predict, the training step) from regressing back into the
// allocator. A matching benchmark that did not report allocations (run
// without -benchmem or ReportAllocs) fails too: a silent gate is no
// gate. It returns an error naming every offender, or nil.
func CheckZeroAllocs(results []BenchResult, re *regexp.Regexp) error {
	var bad []string
	matched := false
	for _, r := range results {
		if !re.MatchString(r.Name) {
			continue
		}
		matched = true
		allocs, ok := r.Metrics["allocs/op"]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s reported no allocs/op", r.Name))
		case allocs != 0:
			bad = append(bad, fmt.Sprintf("%s allocates %g allocs/op, want 0", r.Name, allocs))
		}
	}
	if !matched {
		return fmt.Errorf("no benchmark matched %q", re)
	}
	if len(bad) > 0 {
		return fmt.Errorf("zero-alloc gate failed: %s", strings.Join(bad, "; "))
	}
	return nil
}
