// Package eval provides the evaluation utilities shared by the
// experiment harness: robustness curves, parameter-grid sweeps and
// terminal renderers that print results in the same form as the paper's
// figures (accuracy-vs-ε curves, T×Vth heatmaps, bar groups and tables).
package eval

import (
	"fmt"
	"sort"
	"strings"
)

// Curve is one named accuracy-vs-ε series (Figs. 1-3).
type Curve struct {
	Name string
	Eps  []float64
	Acc  []float64 // same length as Eps, values in [0,1]
}

// Grid is a T×Vth accuracy heatmap (Figs. 4-7a). Acc[i][j] corresponds
// to Steps[i], VThs[j].
type Grid struct {
	Title string
	Steps []int
	VThs  []float32
	Acc   [][]float64
}

// BarGroup is a set of labelled bars per category (Fig. 7b).
type BarGroup struct {
	Title      string
	Categories []string // e.g. AccSNN, AxSNN
	Series     []string // e.g. No Attack, Sparse, Frame
	Values     [][]float64
}

// Table is a generic header+rows table (Tables I-II).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// FormatCurves renders curves as an aligned text table, one ε per row.
func FormatCurves(title string, curves []Curve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8s", "eps")
	for _, c := range curves {
		fmt.Fprintf(&b, " %12s", c.Name)
	}
	b.WriteByte('\n')
	if len(curves) == 0 {
		return b.String()
	}
	for i, e := range curves[0].Eps {
		fmt.Fprintf(&b, "%8.2f", e)
		for _, c := range curves {
			if i < len(c.Acc) {
				fmt.Fprintf(&b, " %11.1f%%", 100*c.Acc[i])
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatGrid renders a heatmap as the paper prints them: rows are time
// steps (descending), columns are threshold voltages, cells are accuracy
// percentages.
func FormatGrid(g Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	fmt.Fprintf(&b, "%6s |", "T\\Vth")
	for _, v := range g.VThs {
		fmt.Fprintf(&b, " %5.2f", v)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 8+6*len(g.VThs)))
	// Paper displays high T at the top.
	order := make([]int, len(g.Steps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, bIdx int) bool { return g.Steps[order[a]] > g.Steps[order[bIdx]] })
	for _, i := range order {
		fmt.Fprintf(&b, "%6d |", g.Steps[i])
		for j := range g.VThs {
			fmt.Fprintf(&b, " %5.0f", 100*g.Acc[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatBars renders grouped bars as rows of percentages.
func FormatBars(g BarGroup) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	fmt.Fprintf(&b, "%-22s", "")
	for _, s := range g.Series {
		fmt.Fprintf(&b, " %14s", s)
	}
	b.WriteByte('\n')
	for i, cat := range g.Categories {
		fmt.Fprintf(&b, "%-22s", cat)
		for j := range g.Series {
			fmt.Fprintf(&b, " %13.1f%%", 100*g.Values[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable renders a table with aligned columns.
func FormatTable(t Table) string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CurvesCSV emits curves as CSV (eps, one column per curve).
func CurvesCSV(curves []Curve) string {
	var b strings.Builder
	b.WriteString("eps")
	for _, c := range curves {
		fmt.Fprintf(&b, ",%s", c.Name)
	}
	b.WriteByte('\n')
	if len(curves) == 0 {
		return b.String()
	}
	for i, e := range curves[0].Eps {
		fmt.Fprintf(&b, "%g", e)
		for _, c := range curves {
			fmt.Fprintf(&b, ",%.4f", c.Acc[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GridCSV emits a grid as CSV with a header row of threshold voltages.
func GridCSV(g Grid) string {
	var b strings.Builder
	b.WriteString("steps")
	for _, v := range g.VThs {
		fmt.Fprintf(&b, ",%g", v)
	}
	b.WriteByte('\n')
	for i, s := range g.Steps {
		fmt.Fprintf(&b, "%d", s)
		for j := range g.VThs {
			fmt.Fprintf(&b, ",%.4f", g.Acc[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
