package eval

import (
	"fmt"
	"strings"
)

// Markdown emitters, used to paste regenerated artifacts into
// EXPERIMENTS.md-style reports.

// TableMarkdown renders a Table as GitHub-flavoured markdown.
func TableMarkdown(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CurvesMarkdown renders curves as a markdown table with one ε per row.
func CurvesMarkdown(title string, curves []Curve) string {
	t := Table{Title: title, Headers: []string{"eps"}}
	for _, c := range curves {
		t.Headers = append(t.Headers, c.Name)
	}
	if len(curves) > 0 {
		for i, e := range curves[0].Eps {
			row := []string{fmt.Sprintf("%g", e)}
			for _, c := range curves {
				if i < len(c.Acc) {
					row = append(row, fmt.Sprintf("%.1f%%", 100*c.Acc[i]))
				} else {
					row = append(row, "-")
				}
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return TableMarkdown(t)
}

// GridMarkdown renders a heatmap as a markdown table (T rows descending).
func GridMarkdown(g Grid) string {
	t := Table{Title: g.Title, Headers: []string{"T \\ Vth"}}
	for _, v := range g.VThs {
		t.Headers = append(t.Headers, fmt.Sprintf("%.2f", v))
	}
	order := make([]int, len(g.Steps))
	for i := range order {
		order[i] = i
	}
	// descending by steps (matches the paper's figures)
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if g.Steps[order[j]] > g.Steps[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, i := range order {
		row := []string{fmt.Sprintf("%d", g.Steps[i])}
		for j := range g.VThs {
			row = append(row, fmt.Sprintf("%.0f", 100*g.Acc[i][j]))
		}
		t.Rows = append(t.Rows, row)
	}
	return TableMarkdown(t)
}
