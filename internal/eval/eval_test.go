package eval

import (
	"strings"
	"testing"
)

func TestFormatCurves(t *testing.T) {
	s := FormatCurves("title", []Curve{
		{Name: "a", Eps: []float64{0, 1}, Acc: []float64{0.9, 0.1}},
		{Name: "b", Eps: []float64{0, 1}, Acc: []float64{0.8, 0.2}},
	})
	if !strings.Contains(s, "title") || !strings.Contains(s, "90.0%") || !strings.Contains(s, "20.0%") {
		t.Fatalf("bad curve format:\n%s", s)
	}
	// Ragged series render a dash instead of panicking.
	s = FormatCurves("t", []Curve{
		{Name: "a", Eps: []float64{0, 1}, Acc: []float64{0.9, 0.1}},
		{Name: "b", Eps: []float64{0, 1}, Acc: []float64{0.8}},
	})
	if !strings.Contains(s, "-") {
		t.Fatal("ragged curve not handled")
	}
	if FormatCurves("empty", nil) == "" {
		t.Fatal("empty curves must still render the title")
	}
}

func TestFormatGridOrdersStepsDescending(t *testing.T) {
	g := Grid{
		Title: "g",
		Steps: []int{32, 80, 56},
		VThs:  []float32{0.25, 0.5},
		Acc:   [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}},
	}
	s := FormatGrid(g)
	i80 := strings.Index(s, "    80 |")
	i56 := strings.Index(s, "    56 |")
	i32 := strings.Index(s, "    32 |")
	if !(i80 < i56 && i56 < i32) || i80 < 0 {
		t.Fatalf("rows not in descending T order:\n%s", s)
	}
	// Row for T=80 must carry Acc[1] (30, 40).
	row := s[i80 : strings.Index(s[i80:], "\n")+i80]
	if !strings.Contains(row, "30") || !strings.Contains(row, "40") {
		t.Fatalf("row/value association broken: %q", row)
	}
}

func TestFormatBars(t *testing.T) {
	s := FormatBars(BarGroup{
		Title:      "bars",
		Categories: []string{"AccSNN", "AxSNN"},
		Series:     []string{"No Attack", "Sparse"},
		Values:     [][]float64{{0.92, 0.12}, {0.9, 0.1}},
	})
	if !strings.Contains(s, "AccSNN") || !strings.Contains(s, "92.0%") || !strings.Contains(s, "10.0%") {
		t.Fatalf("bad bars:\n%s", s)
	}
}

func TestFormatTableAlignment(t *testing.T) {
	s := FormatTable(Table{
		Title:   "tbl",
		Headers: []string{"a", "longheader"},
		Rows:    [][]string{{"verylongcell", "x"}},
	})
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatal("separator missing")
	}
}

func TestCSVOutputs(t *testing.T) {
	c := CurvesCSV([]Curve{{Name: "a", Eps: []float64{0, 0.5}, Acc: []float64{1, 0.25}}})
	if !strings.HasPrefix(c, "eps,a\n") || !strings.Contains(c, "0.5,0.2500") {
		t.Fatalf("bad curves csv: %q", c)
	}
	g := GridCSV(Grid{Steps: []int{8}, VThs: []float32{0.25, 0.5}, Acc: [][]float64{{0.5, 0.75}}})
	if !strings.Contains(g, "steps,0.25,0.5") || !strings.Contains(g, "8,0.5000,0.7500") {
		t.Fatalf("bad grid csv: %q", g)
	}
	if CurvesCSV(nil) != "eps\n" {
		t.Fatal("empty curves csv wrong")
	}
}
