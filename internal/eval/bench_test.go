package eval

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

const benchSample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkPredict                	     100	    707104 ns/op	       0 B/op	       0 allocs/op
BenchmarkNeuromorphicPerturbSet-4 	       2	  17037998 ns/op	   2129675 ns/stream	10130912 B/op	    5259 allocs/op
BenchmarkFig7b	       1	123 ns/op	 92.0 accsnn_clean_%
PASS
ok  	repro	0.088s
`

func TestParseBench(t *testing.T) {
	rs, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3", len(rs))
	}
	p := rs[0]
	if p.Name != "BenchmarkPredict" || p.Iterations != 100 || p.Procs != 0 {
		t.Fatalf("bad first result: %+v", p)
	}
	if p.Metrics["ns/op"] != 707104 || p.Metrics["allocs/op"] != 0 {
		t.Fatalf("bad metrics: %v", p.Metrics)
	}
	n := rs[1]
	if n.Name != "BenchmarkNeuromorphicPerturbSet" || n.Procs != 4 {
		t.Fatalf("GOMAXPROCS suffix not split: %+v", n)
	}
	if n.Metrics["ns/stream"] != 2129675 {
		t.Fatalf("custom metric lost: %v", n.Metrics)
	}
	if rs[2].Metrics["accsnn_clean_%"] != 92.0 {
		t.Fatalf("experiment metric lost: %v", rs[2].Metrics)
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	rs, err := ParseBench(strings.NewReader("BenchmarkBroken abc\nnothing here\nBenchmarkOK 5 10 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Name != "BenchmarkOK" {
		t.Fatalf("noise not ignored: %+v", rs)
	}
}

func TestBenchJSONRoundTrip(t *testing.T) {
	rs, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := BenchJSON(rs)
	if err != nil {
		t.Fatal(err)
	}
	var back []BenchResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) || back[0].Metrics["ns/op"] != rs[0].Metrics["ns/op"] {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestCheckZeroAllocs(t *testing.T) {
	rs, err := ParseBench(strings.NewReader(benchSample))
	if err != nil {
		t.Fatal(err)
	}
	// BenchmarkPredict reports 0 allocs/op: passes.
	if err := CheckZeroAllocs(rs, regexp.MustCompile(`^BenchmarkPredict$`)); err != nil {
		t.Fatalf("clean gate failed: %v", err)
	}
	// The neuromorphic set allocates: the gate must fail and name it.
	err = CheckZeroAllocs(rs, regexp.MustCompile(`^BenchmarkNeuromorphicPerturbSet$`))
	if err == nil || !strings.Contains(err.Error(), "BenchmarkNeuromorphicPerturbSet") {
		t.Fatalf("allocating benchmark must fail the gate, got %v", err)
	}
	// A benchmark without alloc metrics must fail too (silent gate).
	err = CheckZeroAllocs(rs, regexp.MustCompile(`^BenchmarkFig7b$`))
	if err == nil || !strings.Contains(err.Error(), "no allocs/op") {
		t.Fatalf("metric-less benchmark must fail the gate, got %v", err)
	}
	// No match at all is an error, not a silent pass.
	if err := CheckZeroAllocs(rs, regexp.MustCompile(`^BenchmarkNope$`)); err == nil {
		t.Fatal("unmatched gate regexp must error")
	}
}

func TestCompareBench(t *testing.T) {
	prev := []BenchResult{
		{Name: "BenchmarkPredict", Metrics: map[string]float64{"ns/op": 1000}},
		{Name: "BenchmarkServeWindow", Metrics: map[string]float64{"ns/op": 500}},
		{Name: "BenchmarkRetired", Metrics: map[string]float64{"ns/op": 10}},
	}
	gate := regexp.MustCompile(`^Benchmark(Predict|ServeWindow|New)$`)

	// Within budget: 15% slower passes a 20% gate.
	cur := []BenchResult{
		{Name: "BenchmarkPredict", Metrics: map[string]float64{"ns/op": 1150}},
		{Name: "BenchmarkServeWindow", Metrics: map[string]float64{"ns/op": 400}},
	}
	if err := CompareBench(prev, cur, gate, 1.2); err != nil {
		t.Fatalf("within-budget run failed the gate: %v", err)
	}

	// Over budget: the offender is named with both timings.
	cur[0].Metrics["ns/op"] = 1300
	err := CompareBench(prev, cur, gate, 1.2)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkPredict") {
		t.Fatalf("regression not reported: %v", err)
	}

	// A benchmark new in cur has no baseline and passes; an ungated
	// regression is ignored.
	cur = []BenchResult{
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 9e9}},
		{Name: "BenchmarkUngated", Metrics: map[string]float64{"ns/op": 9e9}},
	}
	if err := CompareBench(prev, cur, gate, 1.2); err != nil {
		t.Fatalf("new/ungated benchmarks tripped the gate: %v", err)
	}

	// No comparable pair at all (first artifact): passes.
	if err := CompareBench(nil, cur, gate, 1.2); err != nil {
		t.Fatalf("empty baseline failed: %v", err)
	}

	if err := CompareBench(prev, cur, gate, 0); err == nil {
		t.Fatal("non-positive ratio accepted")
	}
}
