package eval

import (
	"strings"
	"testing"
)

func TestTableMarkdown(t *testing.T) {
	s := TableMarkdown(Table{
		Title:   "T",
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	})
	if !strings.Contains(s, "**T**") || !strings.Contains(s, "| a | b |") ||
		!strings.Contains(s, "| --- | --- |") || !strings.Contains(s, "| 1 | 2 |") {
		t.Fatalf("bad markdown:\n%s", s)
	}
}

func TestCurvesMarkdown(t *testing.T) {
	s := CurvesMarkdown("c", []Curve{
		{Name: "x", Eps: []float64{0, 1}, Acc: []float64{0.9, 0.1}},
		{Name: "y", Eps: []float64{0, 1}, Acc: []float64{0.8}},
	})
	if !strings.Contains(s, "| eps | x | y |") || !strings.Contains(s, "90.0%") || !strings.Contains(s, "| - |") {
		t.Fatalf("bad curves markdown:\n%s", s)
	}
}

func TestGridMarkdownDescending(t *testing.T) {
	s := GridMarkdown(Grid{
		Title: "g",
		Steps: []int{32, 80},
		VThs:  []float32{0.25},
		Acc:   [][]float64{{0.5}, {0.9}},
	})
	i80 := strings.Index(s, "| 80 |")
	i32 := strings.Index(s, "| 32 |")
	if i80 < 0 || i32 < 0 || i80 > i32 {
		t.Fatalf("rows not descending:\n%s", s)
	}
	if !strings.Contains(s, "| 80 | 90 |") {
		t.Fatalf("row association broken:\n%s", s)
	}
}
