module repro

// 1.23 is the floor CI's test matrix exercises (1.23 and 1.24); keep
// the directive at the floor so the matrix stays honest.
go 1.23
