// Package repro's top-level benchmarks regenerate every table and figure
// of the paper at Tiny scale (one full experiment per benchmark
// iteration) and report the headline metrics alongside wall-clock time.
// Run with:
//
//	go test -bench=. -benchmem
//
// Use cmd/axsnn-repro for the full-scale artifacts; these benchmarks are
// the regression harness that keeps every experiment runnable and its
// key relationships intact.
package repro

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/defense"
	"repro/internal/dvs"
	"repro/internal/encoding"
	"repro/internal/exp"
	"repro/internal/rng"
	"repro/internal/snn"
	"repro/internal/stream"
	"repro/internal/tensor"
)

var benchOpts = exp.Options{Scale: exp.Tiny, Seed: 7}

// benchExperiment runs one registered experiment per iteration and
// reports selected metrics (as percentages).
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var last exp.Result
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(id, benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, m := range metrics {
		if v, ok := last.Metrics[m]; ok {
			b.ReportMetric(100*v, m+"_%")
		}
	}
}

// BenchmarkFig1 regenerates Fig. 1 (AccSNN vs AxSNN(0.1) under PGD).
func BenchmarkFig1(b *testing.B) {
	benchExperiment(b, "fig1", "clean_accsnn", "accsnn_eps1.0", "axsnn0.1_eps1.0")
}

// BenchmarkFig2 regenerates Fig. 2 (PGD across approximation levels).
func BenchmarkFig2(b *testing.B) {
	benchExperiment(b, "fig2", "AccSNN_eps0.9", "Ax(0.01)_eps0.9", "Ax(1)_eps0")
}

// BenchmarkFig3 regenerates Fig. 3 (BIM across approximation levels).
func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3", "AccSNN_eps0.9", "Ax(0.01)_eps0.9")
}

// BenchmarkFig4 regenerates Fig. 4 (FP32 structural heatmaps, ε=1).
func BenchmarkFig4(b *testing.B) {
	benchExperiment(b, "fig4", "pgd_mean", "bim_mean", "pgd_best", "bim_best")
}

// BenchmarkFig5 regenerates Fig. 5 (FP16 structural heatmaps, ε=1).
func BenchmarkFig5(b *testing.B) {
	benchExperiment(b, "fig5", "pgd_mean", "bim_mean")
}

// BenchmarkFig6 regenerates Fig. 6 (INT8 structural heatmaps, ε=1).
func BenchmarkFig6(b *testing.B) {
	benchExperiment(b, "fig6", "pgd_mean", "bim_mean")
}

// BenchmarkFig7a regenerates Fig. 7a (clean AccSNN heatmap).
func BenchmarkFig7a(b *testing.B) {
	benchExperiment(b, "fig7a", "mean", "best")
}

// BenchmarkFig7b regenerates Fig. 7b (neuromorphic attack bars).
func BenchmarkFig7b(b *testing.B) {
	benchExperiment(b, "fig7b", "accsnn_clean", "accsnn_sparse", "accsnn_frame")
}

// BenchmarkTable1 regenerates Table I (Algorithm 1 best settings).
func BenchmarkTable1(b *testing.B) {
	benchExperiment(b, "table1")
}

// BenchmarkTable2 regenerates Table II (AQF recovered accuracy).
func BenchmarkTable2(b *testing.B) {
	benchExperiment(b, "table2", "baseline")
}

// BenchmarkEnergy regenerates the §I energy-efficiency ablation.
func BenchmarkEnergy(b *testing.B) {
	benchExperiment(b, "energy", "savings_level0.1", "acc_level0.1")
}

// BenchmarkAblationEncoding regenerates the spike-encoding extension.
func BenchmarkAblationEncoding(b *testing.B) {
	benchExperiment(b, "ablation-encoding", "rate_clean", "ttfs_clean")
}

// BenchmarkAblationAQF regenerates the AQF-constants extension.
func BenchmarkAblationAQF(b *testing.B) {
	benchExperiment(b, "ablation-aqf", "baseline")
}

// BenchmarkAblationFilters regenerates the AQF-vs-baseline-filter
// comparison under the three neuromorphic attacks.
func BenchmarkAblationFilters(b *testing.B) {
	benchExperiment(b, "ablation-filters", "Frame_aqf", "Frame_baf")
}

// BenchmarkHWMapping regenerates the Loihi-class deployment footprint.
func BenchmarkHWMapping(b *testing.B) {
	benchExperiment(b, "hw-mapping", "cores_level0", "cores_level0.3")
}

// ---------------------------------------------------------------------
// Component throughput benchmarks (the substrate's hot paths).

// BenchmarkSNNInference measures single-sample inference latency of the
// lite convolutional MNIST topology at T=8.
func BenchmarkSNNInference(b *testing.B) {
	r := rng.New(1)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	img := dataset.RenderDigit(3, dcfg, r)
	frames := encoding.Rate{}.Encode(img, cfg.Steps, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Predict(frames)
	}
}

// BenchmarkSNNInferenceBatch measures batched inference throughput:
// one PredictBatch over 32 samples per iteration, reporting the
// per-sample latency. Compare against BenchmarkSNNInference to see what
// the batched data path and the shared kernel pool buy.
func BenchmarkSNNInferenceBatch(b *testing.B) {
	const batch = 32
	r := rng.New(1)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	samples := make([][]*tensor.Tensor, batch)
	for i := range samples {
		img := dataset.RenderDigit(i%10, dcfg, r)
		samples[i] = encoding.Rate{}.Encode(img, cfg.Steps, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.PredictBatch(samples)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

// BenchmarkSNNTrainStep measures one BPTT forward+backward pass.
func BenchmarkSNNTrainStep(b *testing.B) {
	r := rng.New(2)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	img := dataset.RenderDigit(5, dcfg, r)
	frames := encoding.Rate{}.Encode(img, cfg.Steps, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := net.Forward(frames, true)
		_, grad := snn.SoftmaxCrossEntropy(logits, 5)
		net.Backward(grad)
		net.ZeroGrads()
	}
}

// BenchmarkSNNTrainStepBatch measures one batched BPTT pass over a
// 16-sample minibatch (the snn.Train hot loop), reporting per-sample
// latency.
func BenchmarkSNNTrainStepBatch(b *testing.B) {
	const batch = 16
	r := rng.New(2)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	samples := make([][]*tensor.Tensor, batch)
	labels := make([]int, batch)
	for i := range samples {
		labels[i] = i % 10
		img := dataset.RenderDigit(labels[i], dcfg, r)
		samples[i] = encoding.Rate{}.Encode(img, cfg.Steps, r)
	}
	frames := snn.StackFrames(samples, cfg.Steps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits := net.ForwardBatch(frames, true)
		_, grad := snn.SoftmaxCrossEntropyBatch(logits, labels)
		net.BackwardBatch(grad)
		net.ZeroGrads()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/sample")
}

// trainStepFixture builds the BenchmarkTrainStep/-Fresh workload: the
// lite convolutional MNIST topology at T=8 with a 16-sample rate-coded
// minibatch, the snn.Train hot loop's shape.
func trainStepFixture() (*snn.Network, [][]*tensor.Tensor, []int) {
	const batch = 16
	r := rng.New(2)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	samples := make([][]*tensor.Tensor, batch)
	labels := make([]int, batch)
	for i := range samples {
		labels[i] = i % 10
		img := dataset.RenderDigit(labels[i], dcfg, r)
		samples[i] = encoding.Rate{}.Encode(img, cfg.Steps, r)
	}
	return net, samples, labels
}

// BenchmarkTrainStep measures the steady-state arena training step: one
// minibatch cycle (zeroing, frame stacking, training forward, loss,
// BPTT, optimizer step — gradient clipping is off here, as in the
// default TrainOptions; the snn property test covers the clipped
// cycle) against a TrainScratch. Runs in deterministic serial mode so
// allocs/op stays 0 — the pool's parallel dispatch allocates job
// descriptors; CI gates this benchmark (and BenchmarkPredict) at 0
// allocs/op. Compare against BenchmarkTrainStepFresh for what the
// arena eliminates.
func BenchmarkTrainStep(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	net, samples, labels := trainStepFixture()
	ts := net.AcquireTrainScratch()
	defer net.ReleaseTrain(ts)
	opt := snn.NewAdam(2e-3)
	scale := 1 / float32(len(samples))
	step := func() {
		ts.ZeroGrads()
		net.TrainStepScratch(samples, labels, ts)
		opt.Step(ts.Params(), ts.Grads(), scale)
	}
	step() // warm the arena and the optimizer state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	// Stop before reporting: ReportMetric's bookkeeping must not count
	// against the 0 allocs/op gate at -benchtime=1x.
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(samples)), "ns/sample")
}

// BenchmarkTrainStepFresh is the pre-arena baseline: the same minibatch
// cycle through the allocating StackFrames/ForwardBatch/BackwardBatch
// path, also in serial mode so the two benchmarks differ only in arena
// use.
func BenchmarkTrainStepFresh(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	net, samples, labels := trainStepFixture()
	opt := snn.NewAdam(2e-3)
	scale := 1 / float32(len(samples))
	step := func() {
		net.ZeroGrads()
		logits := net.ForwardBatch(snn.StackFrames(samples, net.Cfg.Steps), true)
		_, grad := snn.SoftmaxCrossEntropyBatch(logits, labels)
		net.BackwardBatch(grad)
		opt.Step(net.Params(), net.Grads(), scale)
	}
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(samples)), "ns/sample")
}

// BenchmarkGEMM measures the blocked parallel MatMul on a panel shaped
// like a batched convolution lowering — the kernel every hot path above
// funnels into. Worker scaling shows up here first on multi-core
// machines.
func BenchmarkGEMM(b *testing.B) {
	r := rng.New(3)
	w := tensor.New(32, 288)
	for i := range w.Data {
		w.Data[i] = r.NormFloat32()
	}
	cols := tensor.New(288, 2048)
	for i := range cols.Data {
		if r.Float64() < 0.3 {
			cols.Data[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMul(w, cols)
	}
}

// BenchmarkPGDCraft measures adversarial example crafting per image.
func BenchmarkPGDCraft(b *testing.B) {
	r := rng.New(3)
	cfg := snn.DefaultConfig(0.5, 6)
	net := snn.DenseNet(cfg, 256, 64, 10, r)
	dcfg := dataset.DefaultSynthConfig()
	img := dataset.RenderDigit(7, dcfg, r)
	atk := attack.PGD(0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = atk.Perturb(net, img, 7, r)
	}
}

// BenchmarkPredict measures the steady-state single-sample inference
// hot path through the arena (Predict acquires/releases a pooled
// Scratch internally). Compare allocs/op against BenchmarkPredictFresh
// to see what the arena eliminates.
func BenchmarkPredict(b *testing.B) {
	r := rng.New(1)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	img := dataset.RenderDigit(3, dcfg, r)
	frames := encoding.Rate{}.Encode(img, cfg.Steps, r)
	net.Predict(frames) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Predict(frames)
	}
}

// BenchmarkPredictInt8 measures the same steady-state inference hot
// path through the quantized INT8 tier: per-channel int8 weight panels
// (built cold, before the timer), int32 accumulation, float32 epilogue.
// Runs in deterministic serial mode so allocs/op stays 0 — the parallel
// int8 kernel allocates per-block scratch, exactly like the parallel
// paths the other gated benchmarks pin out. CI's zero-alloc and ns/op
// gates cover this benchmark; compare against BenchmarkPredict for the
// quantization speedup on this topology.
func BenchmarkPredictInt8(b *testing.B) {
	tensor.SetWorkers(1)
	defer tensor.SetWorkers(0)
	r := rng.New(1)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	if err := net.BuildInt8Panels(); err != nil {
		b.Fatal(err)
	}
	if err := net.SetTier(snn.TierINT8); err != nil {
		b.Fatal(err)
	}
	dcfg := dataset.DefaultSynthConfig()
	img := dataset.RenderDigit(3, dcfg, r)
	frames := encoding.Rate{}.Encode(img, cfg.Steps, r)
	net.Predict(frames) // warm the arena
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Predict(frames)
	}
}

// BenchmarkPredictFresh is the pre-arena baseline: the same inference
// through the allocating Forward path.
func BenchmarkPredictFresh(b *testing.B) {
	r := rng.New(1)
	cfg := snn.DefaultConfig(0.5, 8)
	net := snn.MNISTNet(cfg, 1, 16, 16, true, r)
	dcfg := dataset.DefaultSynthConfig()
	img := dataset.RenderDigit(3, dcfg, r)
	frames := encoding.Rate{}.Encode(img, cfg.Steps, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Forward(frames, false).Argmax()
	}
}

// BenchmarkNeuromorphicPerturbSet measures the batched event-attack
// path: one Sparse.PerturbSet over a small gesture set per iteration,
// reporting per-stream latency. Worker scaling shows up here on
// multi-core machines (per-stream crafting fans out over the pool).
func BenchmarkNeuromorphicPerturbSet(b *testing.B) {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 400
	set := dvs.GenerateGestureSet(8, gcfg, 5)
	net := snn.DVSNet(snn.DefaultConfig(1.0, 8), 32, 32, 11, true, rng.New(6), nil)
	atk := attack.NewSparse()
	atk.MaxIter = 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = atk.PerturbSet(net, set)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*set.Len()), "ns/stream")
}

// BenchmarkAQFFilterSet measures batched AQF filtering: one FilterSet
// over a set of streams per iteration, reporting per-stream latency.
func BenchmarkAQFFilterSet(b *testing.B) {
	streams := make([]*dvs.Stream, 8)
	for i := range streams {
		streams[i] = dvs.GenerateGesture(i%11, dvs.DefaultGestureConfig(), rng.New(uint64(40+i)))
	}
	p := defense.DefaultAQFParams(0.015)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = defense.FilterSet(streams, p)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(streams)), "ns/stream")
}

// BenchmarkAQFFilter measures AQF event-filtering throughput.
func BenchmarkAQFFilter(b *testing.B) {
	s := dvs.GenerateGesture(7, dvs.DefaultGestureConfig(), rng.New(4))
	p := defense.DefaultAQFParams(0.015)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = defense.AQF(s, p)
	}
	b.ReportMetric(float64(len(s.Events)), "events/op")
}

// BenchmarkIncrementalAQF measures the cross-window online AQF pushing
// the same flow in reader-sized chunks — the filter the streaming
// pipeline and the serve sessions default to. Steady state reuses every
// internal buffer, so throughput is directly comparable to the
// whole-stream BenchmarkAQFFilter above.
func BenchmarkIncrementalAQF(b *testing.B) {
	s := dvs.GenerateGesture(7, dvs.DefaultGestureConfig(), rng.New(4))
	p := defense.DefaultAQFParams(0.015)
	f, err := defense.NewIncrementalAQF(s.W, s.H, s.Duration, p)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 512
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Reset(s.Duration)
		for lo := 0; lo < len(s.Events); lo += chunk {
			hi := lo + chunk
			if hi > len(s.Events) {
				hi = len(s.Events)
			}
			if _, err := f.Push(s.Events[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
		f.Flush()
	}
	b.ReportMetric(float64(len(s.Events)), "events/op")
}

// BenchmarkSparseAttack measures the gradient-guided event attack on one
// stream.
func BenchmarkSparseAttack(b *testing.B) {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 400
	s := dvs.GenerateGesture(2, gcfg, rng.New(5))
	net := snn.DVSNet(snn.DefaultConfig(1.0, 8), 32, 32, 11, true, rng.New(6), nil)
	atk := attack.NewSparse()
	atk.MaxIter = 5
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = atk.Perturb(net, s, 2)
	}
}

// BenchmarkStreamWindow measures one steady-state window of the
// streaming pipeline — windowed voxelization into recycled frames plus
// batched arena inference — the per-window cost that must stay at 0
// allocs/op (CI's zero-alloc gate covers this benchmark).
func BenchmarkStreamWindow(b *testing.B) {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 400
	s := dvs.GenerateGesture(4, gcfg, rng.New(8))
	net := snn.DVSNet(snn.DefaultConfig(1.0, 8), 32, 32, 11, true, rng.New(6), nil)
	const windowMS = 100.0
	windows := dvs.SplitWindows(s, windowMS)
	frames := make([]*tensor.Tensor, net.Cfg.Steps)
	for i := range frames {
		frames[i] = tensor.New(2, 32, 32)
	}
	samples := [][]*tensor.Tensor{frames}
	out := make([]int, 1)
	window := func(i int) {
		dvs.VoxelizeWindowInto(frames, windows[i%len(windows)].Events, 32, 32, 0, windowMS)
		net.PredictBatchInto(samples, out)
	}
	window(0) // warm the arena and frame buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		window(i)
	}
}

// BenchmarkStreamPipeline measures the end-to-end streaming serving
// path: AEDAT decode, windowing, voxelization and batched inference
// over a multi-gesture flow, reporting per-window latency and event
// throughput.
func BenchmarkStreamPipeline(b *testing.B) {
	gcfg := dvs.DefaultGestureConfig()
	gcfg.Duration = 400
	segs := make([]*dvs.Stream, 8)
	for k := range segs {
		segs[k] = dvs.GenerateGesture(k%dvs.GestureClasses, gcfg, rng.New(uint64(80+k)))
	}
	flow, err := dvs.ConcatStreams(segs...)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dvs.WriteAEDAT(&buf, flow); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	net := snn.DVSNet(snn.DefaultConfig(1.0, 8), 32, 32, 11, true, rng.New(6), nil)
	p, err := stream.NewPipeline(net, stream.Options{WindowMS: 100, ChunkEvents: 1024})
	if err != nil {
		b.Fatal(err)
	}
	emit := func(stream.Result) error { return nil }
	windows := dvs.NumWindows(flow.Duration, 100)
	if err := p.Run(bytes.NewReader(data), emit); err != nil { // warm the slots
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Run(bytes.NewReader(data), emit); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*windows), "ns/window")
	b.ReportMetric(float64(b.N*len(flow.Events))/b.Elapsed().Seconds(), "events/s")
}
