# Tier-1 verification and benchmark smoke for the repro module.

GO ?= go

.PHONY: check fmt vet build test race bench bench-json fuzz-smoke

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole suite under the race detector — the event-domain batch paths
# (PerturbSet, FilterSet, ParallelFor fan-out) run concurrently and any
# scheduling regression must fail loudly.
race:
	$(GO) test -race ./...

# One iteration of the hot-path benchmarks: keeps perf regressions
# visible without burning CI minutes.
bench:
	$(GO) test -run '^$$' -bench 'SNNInference|TrainStep|GEMM|PGDCraft|StreamWindow' -benchtime=1x .

# The machine-readable benchmark artifact CI archives (inference +
# training arenas, event-domain attack/filter hot paths, the streaming
# window pipeline). Staged through a file so a benchmark failure fails
# the target instead of hiding behind the pipe; the -zeroalloc gate
# fails it if the arena'd benchmarks regress above 0 allocs/op.
bench-json:
	$(GO) test -run '^$$' -bench 'Predict|NeuromorphicPerturbSet|AQFFilterSet|SNNInference|TrainStep|GEMM|Stream' \
		-benchtime=1x . > bench.txt
	$(GO) run ./cmd/benchjson -zeroalloc '^Benchmark(Predict|TrainStep|StreamWindow)$$' < bench.txt > BENCH_pr4.json

# Short coverage-guided runs of the event-codec fuzz targets — the
# corpus CI exercises against the streaming reader and writer.
fuzz-smoke:
	for t in FuzzStreamReader FuzzStreamRoundTrip FuzzReadAEDAT; do \
		$(GO) test ./internal/dvs -run '^$$' -fuzz "^$$t$$" -fuzztime 10s || exit 1; \
	done
