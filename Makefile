# Tier-1 verification and benchmark smoke for the repro module.

GO ?= go

.PHONY: check fmt vet build test bench

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# One iteration of the hot-path benchmarks: keeps perf regressions
# visible without burning CI minutes.
bench:
	$(GO) test -run '^$$' -bench 'SNNInference|SNNTrainStep|GEMM|PGDCraft' -benchtime=1x .
