# Tier-1 verification and benchmark smoke for the repro module.

GO ?= go

.PHONY: check fmt vet build test race bench bench-json

check: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole suite under the race detector — the event-domain batch paths
# (PerturbSet, FilterSet, ParallelFor fan-out) run concurrently and any
# scheduling regression must fail loudly.
race:
	$(GO) test -race ./...

# One iteration of the hot-path benchmarks: keeps perf regressions
# visible without burning CI minutes.
bench:
	$(GO) test -run '^$$' -bench 'SNNInference|SNNTrainStep|GEMM|PGDCraft' -benchtime=1x .

# The machine-readable benchmark artifact CI archives (inference arena +
# event-domain attack/filter hot paths). Staged through a file so a
# benchmark failure fails the target instead of hiding behind the pipe.
bench-json:
	$(GO) test -run '^$$' -bench 'Predict|NeuromorphicPerturbSet|AQFFilterSet|SNNInference|SNNTrainStep|GEMM' \
		-benchtime=1x . > bench.txt
	$(GO) run ./cmd/benchjson < bench.txt > BENCH_pr2.json
