# Tier-1 verification and benchmark smoke for the repro module.
# CI invokes these targets directly (the bench and fuzz jobs run
# `make bench-json BENCHTIME=3x` and `make fuzz-smoke`), so the
# benchmark/fuzz target lists live here and nowhere else.

GO ?= go
# Benchmark iterations per benchmark: 1x locally for a fast smoke; CI
# raises it for the cross-run regression gate, since single-iteration
# ns/op on shared runners is too noisy to budget against.
BENCHTIME ?= 1x
# Seconds of coverage-guided fuzzing per target.
FUZZTIME ?= 10s

LINTBIN := $(abspath bin/axsnn-lint)

.PHONY: check fmt vet lint build test race bench bench-json fuzz-smoke

check: fmt vet lint build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Standard vet, then the repo's own analyzers (internal/analysis)
# driven package-by-package through go vet's -vettool protocol — the
# incremental, build-cached form of `make lint`.
vet:
	$(GO) vet ./...
	$(GO) build -o $(LINTBIN) ./cmd/axsnn-lint
	$(GO) vet -vettool=$(LINTBIN) ./...

# The repo's invariant analyzers, standalone over the whole module:
# hotpathalloc (annotated hot paths and *Into/*Scratch kernels must not
# allocate), poolrelease (Acquire* paired with deferred Release*),
# atomicguard (atomic/mutex field discipline), forbiddenapi (no
# time.Now, global math/rand, fmt or reflect in kernels).
lint:
	$(GO) run ./cmd/axsnn-lint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Whole suite under the race detector — the event-domain batch paths
# (PerturbSet, FilterSet, ParallelFor fan-out) run concurrently and any
# scheduling regression must fail loudly.
race:
	$(GO) test -race ./...

# One iteration of the hot-path benchmarks: keeps perf regressions
# visible without burning CI minutes.
bench:
	$(GO) test -run '^$$' -bench 'SNNInference|TrainStep|GEMM|PGDCraft|StreamWindow|SchedulerTick|ServeWindow|ServeCreditWindow|ServeSlowConsumer|ServeRouted' -benchtime=1x . ./internal/stream ./internal/serve

# The machine-readable benchmark artifact CI archives (inference +
# training arenas, event-domain attack/filter hot paths, the streaming
# window pipeline, the shared-batch scheduler tick, the serve sessions).
# Staged through a file so a benchmark failure fails the target instead
# of hiding behind the pipe; the -zeroalloc gate fails it if the
# arena'd benchmarks regress above 0 allocs/op. `benchjson -compare
# prev.json` adds the cross-run regression gate CI applies between
# artifacts.
bench-json:
	$(GO) test -run '^$$' -bench 'Predict|NeuromorphicPerturbSet|AQFFilterSet|SNNInference|TrainStep|GEMM|Stream|Scheduler|Serve|IncrementalAQF' \
		-benchtime=$(BENCHTIME) . ./internal/stream ./internal/serve > bench.txt
	$(GO) run ./cmd/benchjson -zeroalloc '^Benchmark(Predict(Int8)?|TrainStep|StreamWindow|SchedulerTick/fill=[0-9]+|ServeWindow|ServeCreditWindow)$$' < bench.txt > BENCH_pr10.json

# Short coverage-guided runs of the fuzz targets — the event codec's
# oracle contracts, the incremental AQF's bit-identity to the
# whole-stream filter, and the serve framing layer (direct and through
# the router's frame-aware relay) against hostile client byte streams.
# Fails fast on the first failing target.
fuzz-smoke:
	@set -e; \
	for spec in "./internal/dvs FuzzStreamReader" "./internal/dvs FuzzStreamRoundTrip" \
		"./internal/dvs FuzzReadAEDAT" "./internal/defense FuzzIncrementalAQF" \
		"./internal/serve FuzzServeFraming" "./internal/serve FuzzRouterProxy"; do \
		set -- $$spec; \
		echo "== $$2 ($$1)"; \
		$(GO) test $$1 -run '^$$' -fuzz "^$$2$$" -fuzztime $(FUZZTIME) || { echo "FUZZ FAILURE: $$2 in $$1"; exit 1; }; \
	done
